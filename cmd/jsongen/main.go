// Command jsongen generates the synthetic benchmark datasets described in
// DESIGN.md (the substitutes for the paper's Table 3 corpora).
//
// Usage:
//
//	jsongen -list
//	jsongen -dataset bestbuy -size 16777216 -out bestbuy.json
//	jsongen -all -dir ./datasets
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"rsonpath/internal/jsongen"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available datasets and exit")
		dataset = flag.String("dataset", "", "dataset to generate")
		size    = flag.Int("size", 0, "target size in bytes (0 = profile default)")
		seed    = flag.Int64("seed", 42, "generation seed")
		out     = flag.String("out", "", "output file (default: stdout)")
		all     = flag.Bool("all", false, "generate every dataset at default size")
		dir     = flag.String("dir", ".", "output directory for -all")
		stats   = flag.Bool("stats", false, "print Table 3 statistics instead of writing data")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-14s %12s %6s %10s\n", "name", "default size", "depth", "verbosity")
		for _, p := range jsongen.Profiles() {
			fmt.Printf("%-14s %12d %6d %10.1f\n", p.Name, p.DefaultSize, p.PaperDepth, p.PaperVerbosity)
		}
	case *all:
		for _, p := range jsongen.Profiles() {
			data, err := jsongen.Generate(p.Name, *size, *seed)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*dir, p.Name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", path, len(data))
		}
	case *dataset != "":
		data, err := jsongen.Generate(*dataset, *size, *seed)
		if err != nil {
			fatal(err)
		}
		if *stats {
			st, err := jsongen.Measure(data)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("dataset=%s size=%d depth=%d nodes=%d verbosity=%.1f\n",
				*dataset, st.SizeBytes, st.Depth, st.Nodes, st.Verbosity)
			return
		}
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, len(data))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "jsongen:", err)
	os.Exit(1)
}
