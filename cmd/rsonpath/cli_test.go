package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cli drives run() with an in-memory environment and returns the exit
// code, stdout, and stderr.
func cli(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIValues(t *testing.T) {
	code, out, stderr := cli(t, `{"a": 1, "b": {"a": [2, 3]}}`, "$..a")
	if code != exitOK || stderr != "" {
		t.Fatalf("code %d stderr %q", code, stderr)
	}
	if out != "1\n[2, 3]\n" {
		t.Fatalf("stdout %q", out)
	}
}

func TestCLICountAndOffsets(t *testing.T) {
	doc := `{"a": 1, "b": {"a": 2}}`
	code, out, _ := cli(t, doc, "-count", "$..a")
	if code != exitOK || out != "2\n" {
		t.Fatalf("count: code %d out %q", code, out)
	}
	code, out, _ = cli(t, doc, "-offsets", "$..a")
	if code != exitOK || out != "6\n20\n" {
		t.Fatalf("offsets: code %d out %q", code, out)
	}
}

func TestCLIFileArgument(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(path, []byte(`{"a": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := cli(t, "", "$.a", path)
	if code != exitOK || out != "7\n" {
		t.Fatalf("code %d out %q", code, out)
	}
	code, _, stderr := cli(t, "", "$.a", filepath.Join(t.TempDir(), "missing.json"))
	if code != exitIO || stderr == "" {
		t.Fatalf("missing file: code %d stderr %q", code, stderr)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                   // no query
		{"-bogus", "$.a"},                    // unknown flag
		{"-engine", "zip", "$.a"},            // unknown engine
		{"$.a[", "-"},                        // unparseable query
		{"-lines", "-e", "$.a", "-e", "$.b"}, // -lines with a query set
	} {
		code, _, _ := cli(t, "{}", args...)
		if code != exitUsage {
			t.Fatalf("args %v: code %d, want %d", args, code, exitUsage)
		}
	}
}

func TestCLIMalformedInput(t *testing.T) {
	for _, engine := range []string{"rsonpath", "surfer", "ski", "dom"} {
		code, _, stderr := cli(t, `{"a": 1`, "-engine", engine, "$.a")
		if code != exitMalformed {
			t.Fatalf("[%s] code %d stderr %q, want %d", engine, code, stderr, exitMalformed)
		}
		if !strings.Contains(stderr, "offset") {
			t.Fatalf("[%s] stderr %q does not report the byte offset", engine, stderr)
		}
	}
}

func TestCLILimitExceeded(t *testing.T) {
	code, _, stderr := cli(t, `[1, 2, 3, 4]`, "-max-matches", "2", "$[*]")
	if code != exitLimit {
		t.Fatalf("max-matches: code %d stderr %q, want %d", code, stderr, exitLimit)
	}
	code, _, _ = cli(t, `{"a": {"b": {"c": 1}}}`, "-max-depth", "2", "$.a.b.c")
	if code != exitLimit {
		t.Fatalf("max-depth: code %d, want %d", code, exitLimit)
	}
	code, _, _ = cli(t, `{"a": [1, 2, 3, 4, 5, 6]}`, "-max-doc-bytes", "8", "$.a")
	if code != exitLimit {
		t.Fatalf("max-doc-bytes: code %d, want %d", code, exitLimit)
	}
}

func TestCLIQuerySet(t *testing.T) {
	doc := `{"a": 1, "b": 2}`
	code, out, _ := cli(t, doc, "-e", "$.a", "-e", "$.b", "-count")
	if code != exitOK {
		t.Fatalf("code %d", code)
	}
	if out != "0:1\n1:1\n" {
		t.Fatalf("out %q", out)
	}
}

func TestCLILinesSkipsBadRecords(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": ` + "\n" + `{"a": 3}` + "\n"
	code, out, stderr := cli(t, input, "-lines", "$.a")
	if code != exitMalformed {
		t.Fatalf("code %d stderr %q, want %d", code, stderr, exitMalformed)
	}
	if out != "1\n3\n" {
		t.Fatalf("good records not fully processed: out %q", out)
	}
	if !strings.Contains(stderr, "line 2") || !strings.Contains(stderr, "1 record(s) skipped") {
		t.Fatalf("stderr %q does not report the bad line", stderr)
	}
}

func TestCLILinesAllGood(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": 2}` + "\n"
	code, out, stderr := cli(t, input, "-lines", "-count", "$.a")
	if code != exitOK || out != "2\n" || stderr != "" {
		t.Fatalf("code %d out %q stderr %q", code, out, stderr)
	}
}
