package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rsonpath/internal/simd"
)

// cli drives run() with an in-memory environment and returns the exit
// code, stdout, and stderr.
func cli(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestCLIValues(t *testing.T) {
	code, out, stderr := cli(t, `{"a": 1, "b": {"a": [2, 3]}}`, "$..a")
	if code != exitOK || stderr != "" {
		t.Fatalf("code %d stderr %q", code, stderr)
	}
	if out != "1\n[2, 3]\n" {
		t.Fatalf("stdout %q", out)
	}
}

func TestCLICountAndOffsets(t *testing.T) {
	doc := `{"a": 1, "b": {"a": 2}}`
	code, out, _ := cli(t, doc, "-count", "$..a")
	if code != exitOK || out != "2\n" {
		t.Fatalf("count: code %d out %q", code, out)
	}
	code, out, _ = cli(t, doc, "-offsets", "$..a")
	if code != exitOK || out != "6\n20\n" {
		t.Fatalf("offsets: code %d out %q", code, out)
	}
}

func TestCLIFileArgument(t *testing.T) {
	path := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(path, []byte(`{"a": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := cli(t, "", "$.a", path)
	if code != exitOK || out != "7\n" {
		t.Fatalf("code %d out %q", code, out)
	}
	code, _, stderr := cli(t, "", "$.a", filepath.Join(t.TempDir(), "missing.json"))
	if code != exitIO || stderr == "" {
		t.Fatalf("missing file: code %d stderr %q", code, stderr)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                   // no query
		{"-bogus", "$.a"},                    // unknown flag
		{"-engine", "zip", "$.a"},            // unknown engine
		{"$.a[", "-"},                        // unparseable query
		{"-lines", "-e", "$.a", "-e", "$.b"}, // -lines with a query set
	} {
		code, _, _ := cli(t, "{}", args...)
		if code != exitUsage {
			t.Fatalf("args %v: code %d, want %d", args, code, exitUsage)
		}
	}
}

func TestCLIMalformedInput(t *testing.T) {
	for _, engine := range []string{"rsonpath", "surfer", "ski", "dom"} {
		code, _, stderr := cli(t, `{"a": 1`, "-engine", engine, "$.a")
		if code != exitMalformed {
			t.Fatalf("[%s] code %d stderr %q, want %d", engine, code, stderr, exitMalformed)
		}
		if !strings.Contains(stderr, "offset") {
			t.Fatalf("[%s] stderr %q does not report the byte offset", engine, stderr)
		}
	}
}

func TestCLILimitExceeded(t *testing.T) {
	code, _, stderr := cli(t, `[1, 2, 3, 4]`, "-max-matches", "2", "$[*]")
	if code != exitLimit {
		t.Fatalf("max-matches: code %d stderr %q, want %d", code, stderr, exitLimit)
	}
	code, _, _ = cli(t, `{"a": {"b": {"c": 1}}}`, "-max-depth", "2", "$.a.b.c")
	if code != exitLimit {
		t.Fatalf("max-depth: code %d, want %d", code, exitLimit)
	}
	code, _, _ = cli(t, `{"a": [1, 2, 3, 4, 5, 6]}`, "-max-doc-bytes", "8", "$.a")
	if code != exitLimit {
		t.Fatalf("max-doc-bytes: code %d, want %d", code, exitLimit)
	}
}

func TestCLIQuerySet(t *testing.T) {
	doc := `{"a": 1, "b": 2}`
	code, out, _ := cli(t, doc, "-e", "$.a", "-e", "$.b", "-count")
	if code != exitOK {
		t.Fatalf("code %d", code)
	}
	if out != "0:1\n1:1\n" {
		t.Fatalf("out %q", out)
	}
}

func TestCLILinesSkipsBadRecords(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": ` + "\n" + `{"a": 3}` + "\n"
	code, out, stderr := cli(t, input, "-lines", "$.a")
	if code != exitMalformed {
		t.Fatalf("code %d stderr %q, want %d", code, stderr, exitMalformed)
	}
	if out != "1\n3\n" {
		t.Fatalf("good records not fully processed: out %q", out)
	}
	if !strings.Contains(stderr, "line 2") || !strings.Contains(stderr, "1 record(s) skipped") {
		t.Fatalf("stderr %q does not report the bad line", stderr)
	}
}

func TestCLILinesAllGood(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": 2}` + "\n"
	code, out, stderr := cli(t, input, "-lines", "-count", "$.a")
	if code != exitOK || out != "2\n" || stderr != "" {
		t.Fatalf("code %d out %q stderr %q", code, out, stderr)
	}
}

func TestCLISupervisorFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-parallel", "4", "$.a"},         // -parallel without -lines
		{"-fallback", "sometimes", "$.a"}, // unknown fallback mode
		{"-timeout", "not-a-duration", "$.a"},
	} {
		code, _, _ := cli(t, "{}", args...)
		if code != exitUsage {
			t.Fatalf("args %v: code %d, want %d", args, code, exitUsage)
		}
	}
}

func TestCLILinesParallel(t *testing.T) {
	// The worker pool must deliver in input order and skip bad records with
	// the same reporting as the sequential path.
	input := `{"a": 1}` + "\n" + `{"a": ` + "\n" + `{"a": 3}` + "\n" + `{"a": [4, 5]}` + "\n"
	seqCode, seqOut, _ := cli(t, input, "-lines", "$.a")
	for _, workers := range []string{"0", "2", "4"} {
		code, out, stderr := cli(t, input, "-lines", "-parallel", workers, "$.a")
		if code != seqCode || out != seqOut {
			t.Fatalf("-parallel %s: code %d out %q, want code %d out %q",
				workers, code, out, seqCode, seqOut)
		}
		if !strings.Contains(stderr, "line 2") {
			t.Fatalf("-parallel %s: stderr %q does not report the bad line", workers, stderr)
		}
	}
}

func TestCLISupervisedFileRun(t *testing.T) {
	// Count and offsets modes over a named file take the supervised path;
	// a clean run must be indistinguishable from the direct one.
	path := filepath.Join(t.TempDir(), "doc.json")
	if err := os.WriteFile(path, []byte(`{"a": 1, "b": {"a": 2}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := cli(t, "", "-count", "$..a", path)
	if code != exitOK || out != "2\n" || stderr != "" {
		t.Fatalf("count: code %d out %q stderr %q", code, out, stderr)
	}
	code, out, _ = cli(t, "", "-offsets", "$..a", path)
	if code != exitOK || out != "6\n20\n" {
		t.Fatalf("offsets: code %d out %q", code, out)
	}
	code, out, _ = cli(t, "", "-timeout", "5s", "-fallback", "off", "-count", "$..a", path)
	if code != exitOK || out != "2\n" {
		t.Fatalf("with supervisor flags: code %d out %q", code, out)
	}
}

func TestCLITimeoutExpires(t *testing.T) {
	// A deadline that cannot be met aborts the run with a non-zero exit and
	// a cancellation report rather than hanging.
	path := filepath.Join(t.TempDir(), "doc.json")
	big := `{"a": [` + strings.Repeat(`{"b": 1}, `, 1<<15) + `{"b": 1}]}`
	if err := os.WriteFile(path, []byte(big), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := cli(t, "", "-timeout", "1ns", "-count", "$..b", path)
	if code == exitOK {
		t.Fatalf("expired deadline exited 0 (stderr %q)", stderr)
	}
	if !strings.Contains(stderr, "cancel") && !strings.Contains(stderr, "deadline") {
		t.Fatalf("stderr %q does not report the deadline", stderr)
	}
}

func TestCLIExplain(t *testing.T) {
	// The plan goes to stderr so piped stdout stays clean.
	code, out, stderr := cli(t, `{"a": 1}`, "-explain", "-count", "$..a")
	if code != exitOK {
		t.Fatalf("code %d stderr %q", code, stderr)
	}
	if out != "1\n" {
		t.Fatalf("stdout %q", out)
	}
	if !strings.Contains(stderr, "rsonpath: plan: strategy=head-skip engine=rsonpath rule=head-skip") {
		t.Fatalf("stderr %q", stderr)
	}

	// A pinned engine is reported as a constraint, not a choice.
	code, _, stderr = cli(t, `{"a": 1}`, "-explain", "-engine", "surfer", "-count", "$..a")
	if code != exitOK || !strings.Contains(stderr, "rule=forced-engine") {
		t.Fatalf("code %d stderr %q", code, stderr)
	}

	// Indexed runs plan per query against the prebuilt index.
	code, out, stderr = cli(t, `{"a": {"b": 1}}`, "-explain", "-index", "-count",
		"-e", "$.a.b", "-e", "$..b")
	if code != exitOK {
		t.Fatalf("code %d stderr %q", code, stderr)
	}
	if out != "0:1\n1:1\n" {
		t.Fatalf("stdout %q", out)
	}
	for _, want := range []string{"rsonpath: plan 0: strategy=indexed", "rsonpath: plan 1: strategy=indexed"} {
		if !strings.Contains(stderr, want) {
			t.Fatalf("stderr %q missing %q", stderr, want)
		}
	}

	// Without -explain the plan stays silent.
	code, _, stderr = cli(t, `{"a": 1}`, "-count", "$..a")
	if code != exitOK || strings.Contains(stderr, "plan") {
		t.Fatalf("code %d stderr %q", code, stderr)
	}
}

// TestCLISimdBackendOverride asserts the -simd flag round-trips: the forced
// backend is applied, reported by -explain, and restored afterwards, and an
// unknown backend is a usage error. Results must not depend on the backend.
func TestCLISimdBackendOverride(t *testing.T) {
	prev := simd.Backend()
	defer func() {
		if err := simd.SetBackend(prev); err != nil {
			t.Fatalf("restoring backend %s: %v", prev, err)
		}
	}()
	doc := `{"a": 1, "b": {"a": [2, 3]}}`
	for _, name := range simd.Backends() {
		code, out, stderr := cli(t, doc, "-simd", name, "-explain", "-count", "$..a")
		if code != exitOK {
			t.Fatalf("-simd %s: code %d stderr %q", name, code, stderr)
		}
		if !strings.Contains(stderr, "simd backend: "+name) {
			t.Fatalf("-simd %s: explain did not report the forced backend: %q", name, stderr)
		}
		if out != "2\n" {
			t.Fatalf("-simd %s: out %q, want \"2\\n\"", name, out)
		}
		if got := simd.Backend(); got != name {
			t.Fatalf("-simd %s left backend %q", name, got)
		}
	}
	code, _, stderr := cli(t, doc, "-simd", "no-such-backend", "$..a")
	if code != exitUsage || !strings.Contains(stderr, "not available") {
		t.Fatalf("unknown backend: code %d stderr %q", code, stderr)
	}
}
