// Command rsonpath runs JSONPath queries over a JSON document (a file or
// standard input) and prints the matched values, offsets, or counts.
//
// Usage:
//
//	rsonpath [flags] <query> [file]
//	rsonpath [flags] -e <query> [-e <query>...] [-queries file] [file]
//
// Examples:
//
//	rsonpath '$..user.name' tweets.json
//	rsonpath -count '$.products[*].id' products.json
//	cat doc.json | rsonpath -offsets '$..url'
//	cat huge.json | rsonpath -count '$..id' -    # explicit stdin, streamed
//	rsonpath -lines '$.event' log.jsonl     # newline-delimited JSON
//	rsonpath -e '$..name' -e '$..id' products.json
//	rsonpath -queries queries.txt -count products.json
//
// With -e or -queries the queries are compiled into a QuerySet and the
// document is scanned once for all of them; every output line is prefixed
// with the zero-based index of the query it belongs to ("2:...").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rsonpath"
)

// queryList collects repeated -e flags.
type queryList []string

func (q *queryList) String() string { return strings.Join(*q, ", ") }

func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	var exprs queryList
	var (
		count   = flag.Bool("count", false, "print only the number of matches")
		offsets = flag.Bool("offsets", false, "print byte offsets instead of values")
		engine  = flag.String("engine", "rsonpath", "engine: rsonpath, surfer, ski, or dom")
		lines   = flag.Bool("lines", false, "treat input as newline-delimited JSON records")
		qfile   = flag.String("queries", "", "file with one query per line (# comments); combined after -e queries")
	)
	flag.Var(&exprs, "e", "query expression (repeatable; scans the document once for all queries)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rsonpath [flags] <query> [file]\n")
		fmt.Fprintf(os.Stderr, "       rsonpath [flags] -e <query> [-e <query>...] [-queries file] [file]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	queries := []string(exprs)
	if *qfile != "" {
		fromFile, err := readQueryFile(*qfile)
		if err != nil {
			fatal(err)
		}
		queries = append(queries, fromFile...)
	}
	multi := len(queries) > 0

	var file string
	switch {
	case multi && flag.NArg() <= 1:
		file = flag.Arg(0)
	case !multi && flag.NArg() >= 1 && flag.NArg() <= 2:
		queries = []string{flag.Arg(0)}
		file = flag.Arg(1)
	default:
		flag.Usage()
		os.Exit(2)
	}

	kind, err := engineKind(*engine)
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if file != "" && file != "-" {
		f, err := os.Open(file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if multi {
		if *lines {
			fatal(fmt.Errorf("multiple queries are not supported with -lines"))
		}
		set, err := rsonpath.CompileSet(queries, rsonpath.WithEngine(kind))
		if err != nil {
			fatal(err)
		}
		if err := runSet(set, in, out, *count, *offsets); err != nil {
			fatal(err)
		}
		return
	}

	q, err := rsonpath.Compile(queries[0], rsonpath.WithEngine(kind))
	if err != nil {
		fatal(err)
	}

	if *lines {
		if err := runLines(q, in, out, *count, *offsets); err != nil {
			fatal(err)
		}
		return
	}

	if kind == rsonpath.EngineDOM {
		if err := runOneBuffered(q, in, out, *count, *offsets); err != nil {
			fatal(err)
		}
		return
	}
	if err := runOne(q, in, out, *count, *offsets); err != nil {
		fatal(err)
	}
}

// runOne streams the document through the query with memory bounded by the
// stream window, whatever the document size.
func runOne(q *rsonpath.Query, in io.Reader, out *bufio.Writer, count, offsets bool) error {
	switch {
	case count:
		n, err := q.CountReader(in)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, n)
		return nil
	case offsets:
		return q.RunReader(in, func(pos int) {
			fmt.Fprintln(out, pos)
		})
	default:
		return q.RunReaderValues(in, func(_ int, v []byte) {
			out.Write(v)
			out.WriteByte('\n')
		})
	}
}

// runOneBuffered reads the whole document first — the only mode EngineDOM
// supports.
func runOneBuffered(q *rsonpath.Query, in io.Reader, out *bufio.Writer, count, offsets bool) error {
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	switch {
	case count:
		n, err := q.Count(data)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, n)
	case offsets:
		offs, err := q.MatchOffsets(data)
		if err != nil {
			return err
		}
		for _, o := range offs {
			fmt.Fprintln(out, o)
		}
	default:
		var runErr error
		err := q.Run(data, func(pos int) {
			if runErr != nil {
				return
			}
			v, err := rsonpath.ValueAt(data, pos)
			if err != nil {
				runErr = err
				return
			}
			out.Write(v)
			out.WriteByte('\n')
		})
		if err != nil {
			return err
		}
		if runErr != nil {
			return runErr
		}
	}
	return nil
}

// runSet evaluates a QuerySet in one pass, tagging every output line with
// the query's index. Counts and offsets stream with bounded memory; value
// output buffers the document, since extraction needs to revisit matches
// after the shared pass has moved on.
func runSet(set *rsonpath.QuerySet, in io.Reader, out *bufio.Writer, count, offsets bool) error {
	switch {
	case count:
		counts := make([]int, set.Len())
		if err := set.RunReader(in, func(q, _ int) { counts[q]++ }); err != nil {
			return err
		}
		for i, n := range counts {
			fmt.Fprintf(out, "%d:%d\n", i, n)
		}
	case offsets:
		if err := set.RunReader(in, func(q, pos int) {
			fmt.Fprintf(out, "%d:%d\n", q, pos)
		}); err != nil {
			return err
		}
	default:
		data, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		var runErr error
		err = set.Run(data, func(q, pos int) {
			if runErr != nil {
				return
			}
			v, err := rsonpath.ValueAt(data, pos)
			if err != nil {
				runErr = err
				return
			}
			fmt.Fprintf(out, "%d:", q)
			out.Write(v)
			out.WriteByte('\n')
		})
		if err != nil {
			return err
		}
		if runErr != nil {
			return runErr
		}
	}
	return nil
}

// readQueryFile loads one query per line, skipping blank lines and
// #-comments.
func readQueryFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var queries []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		queries = append(queries, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return queries, nil
}

// runLines streams newline-delimited records with bounded memory.
func runLines(q *rsonpath.Query, in io.Reader, out *bufio.Writer, count, offsets bool) error {
	total := 0
	err := q.RunLines(in, func(m rsonpath.LineMatch) error {
		switch {
		case count:
			total += len(m.Offsets)
		case offsets:
			for _, o := range m.Offsets {
				fmt.Fprintf(out, "%d:%d\n", m.Line, o)
			}
		default:
			for _, o := range m.Offsets {
				v, err := rsonpath.ValueAt(m.Record, o)
				if err != nil {
					return err
				}
				out.Write(v)
				out.WriteByte('\n')
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if count {
		fmt.Fprintln(out, total)
	}
	return nil
}

func engineKind(name string) (rsonpath.EngineKind, error) {
	switch name {
	case "rsonpath":
		return rsonpath.EngineRsonpath, nil
	case "surfer":
		return rsonpath.EngineSurfer, nil
	case "ski":
		return rsonpath.EngineSki, nil
	case "dom":
		return rsonpath.EngineDOM, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want rsonpath, surfer, ski, or dom)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsonpath:", err)
	os.Exit(1)
}
