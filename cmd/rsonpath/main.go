// Command rsonpath runs JSONPath queries over a JSON document (a file or
// standard input) and prints the matched values, offsets, or counts.
//
// Usage:
//
//	rsonpath [flags] <query> [file]
//	rsonpath [flags] -e <query> [-e <query>...] [-queries file] [file]
//
// Examples:
//
//	rsonpath '$..user.name' tweets.json
//	rsonpath -count '$.products[*].id' products.json
//	cat doc.json | rsonpath -offsets '$..url'
//	cat huge.json | rsonpath -count '$..id' -    # explicit stdin, streamed
//	rsonpath -lines '$.event' log.jsonl     # newline-delimited JSON
//	rsonpath -e '$..name' -e '$..id' products.json
//	rsonpath -queries queries.txt -count products.json
//	rsonpath -max-matches 10 '$..id' huge.json   # stop after ten matches
//	rsonpath -timeout 2s -count '$..id' huge.json    # watchdog deadline
//	rsonpath -lines -parallel 4 '$.event' log.jsonl  # worker pool
//	rsonpath -index -e '$..name' -e '$..id' products.json  # classify once, query many
//	rsonpath -explain -count '$..user.name' tweets.json  # print the execution plan
//	rsonpath -engine stackless -count '$..a..b' doc.json # pin an engine
//
// By default the execution planner picks the strategy per run from the
// query shape (DESIGN.md §13); -engine pins one, and -explain prints the
// decision and its rationale to stderr.
//
// With -e or -queries the queries are compiled into a QuerySet and the
// document is scanned once for all of them; every output line is prefixed
// with the zero-based index of the query it belongs to ("2:..."). With
// -index the document is instead buffered and classified once into a
// reusable mask index (rsonpath.Index) and each query runs against the
// index in turn — the right shape when queries arrive over time rather
// than all at once.
//
// Runs over a named file (count and offsets modes) execute under the
// execution supervisor: an internal fault in the chosen engine transparently
// re-runs the query on the DOM oracle (disable with -fallback off). A run
// answered by the fallback prints a warning to stderr and exits with code 6,
// so pipelines can tell a degraded success from a clean one.
//
// Exit codes:
//
//	0  success (matching nothing is still success)
//	1  input/output failure (unreadable file, broken pipe, ...)
//	2  usage error (bad flags, bad query, unknown engine)
//	3  malformed JSON input (the byte offset is printed to stderr)
//	4  a configured resource limit was exceeded
//	5  internal error (a contained library fault; please report it)
//	6  answered, but by the DOM fallback after an internal fault
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rsonpath"
	"rsonpath/internal/simd"
)

// Exit codes; documented in the package comment and the usage text.
const (
	exitOK        = 0
	exitIO        = 1
	exitUsage     = 2
	exitMalformed = 3
	exitLimit     = 4
	exitInternal  = 5
	exitDegraded  = 6
)

// queryList collects repeated -e flags.
type queryList []string

func (q *queryList) String() string { return strings.Join(*q, ", ") }

func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its environment made explicit, so the tests can drive
// the whole command without a subprocess. It returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rsonpath", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var exprs queryList
	var (
		count    = fs.Bool("count", false, "print only the number of matches")
		offsets  = fs.Bool("offsets", false, "print byte offsets instead of values")
		engine   = fs.String("engine", "auto", "engine: auto (planner decides), rsonpath, surfer, ski, stackless, or dom")
		explain  = fs.Bool("explain", false, "print the chosen execution plan and its rationale per query to stderr")
		lines    = fs.Bool("lines", false, "treat input as newline-delimited JSON records (bad records are skipped with a warning)")
		qfile    = fs.String("queries", "", "file with one query per line (# comments); combined after -e queries")
		maxDepth = fs.Int("max-depth", 0, "document nesting limit (0 = default, negative = unlimited)")
		maxMatch = fs.Int("max-matches", 0, "stop with an error after this many matches (0 = unlimited)")
		maxBytes = fs.Int("max-doc-bytes", 0, "largest document size accepted, in bytes (0 = unlimited)")
		timeout  = fs.Duration("timeout", 0, "watchdog deadline per run (per record with -lines; 0 = none)")
		fallback = fs.String("fallback", "on", "degrade to the DOM oracle on internal faults: on or off")
		parallel = fs.Int("parallel", 1, "with -lines: evaluate records with this many workers (0 = GOMAXPROCS)")
		index    = fs.Bool("index", false, "with -e/-queries: buffer the document, classify it once into a reusable mask index, and evaluate each query against the index")
		simdPick = fs.String("simd", os.Getenv(simd.EnvBackend), "force a classification kernel backend (swar, avx2; default: best for this CPU, or $"+simd.EnvBackend+")")
	)
	fs.Var(&exprs, "e", "query expression (repeatable; scans the document once for all queries)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: rsonpath [flags] <query> [file]\n")
		fmt.Fprintf(stderr, "       rsonpath [flags] -e <query> [-e <query>...] [-queries file] [file]\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "exit codes: 0 success, 1 I/O failure, 2 usage, 3 malformed input, 4 limit exceeded, 5 internal error, 6 degraded to fallback\n")
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *simdPick != "" {
		if err := simd.SetBackend(*simdPick); err != nil {
			fmt.Fprintln(stderr, "rsonpath:", err)
			return exitUsage
		}
	}
	if *explain {
		fmt.Fprintf(stderr, "rsonpath: simd backend: %s (available: %s)\n",
			simd.Backend(), strings.Join(simd.Backends(), ", "))
	}

	queries := []string(exprs)
	if *qfile != "" {
		fromFile, err := readQueryFile(*qfile)
		if err != nil {
			return fail(stderr, err)
		}
		queries = append(queries, fromFile...)
	}
	multi := len(queries) > 0

	var file string
	switch {
	case multi && fs.NArg() <= 1:
		file = fs.Arg(0)
	case !multi && fs.NArg() >= 1 && fs.NArg() <= 2:
		queries = []string{fs.Arg(0)}
		file = fs.Arg(1)
	default:
		fs.Usage()
		return exitUsage
	}

	kind, forced, err := engineKind(*engine)
	if err != nil {
		fmt.Fprintln(stderr, "rsonpath:", err)
		return exitUsage
	}
	var opts []rsonpath.Option
	if forced {
		// -engine pins the engine; the planner honors it as a constraint.
		opts = append(opts, rsonpath.WithEngine(kind))
	}
	if *maxDepth != 0 {
		opts = append(opts, rsonpath.WithMaxDepth(*maxDepth))
	}
	if *maxMatch != 0 {
		opts = append(opts, rsonpath.WithMaxMatches(*maxMatch))
	}
	if *maxBytes != 0 {
		opts = append(opts, rsonpath.WithMaxDocBytes(*maxBytes))
	}
	if *timeout > 0 {
		opts = append(opts, rsonpath.WithTimeout(*timeout))
	}
	switch *fallback {
	case "on":
	case "off":
		opts = append(opts, rsonpath.WithFallback(rsonpath.FallbackOff))
	default:
		fmt.Fprintf(stderr, "rsonpath: -fallback must be on or off, not %q\n", *fallback)
		return exitUsage
	}
	if *parallel != 1 && !*lines {
		fmt.Fprintln(stderr, "rsonpath: -parallel requires -lines")
		return exitUsage
	}
	if *index && (!multi || *lines) {
		fmt.Fprintln(stderr, "rsonpath: -index requires -e/-queries and is incompatible with -lines")
		return exitUsage
	}

	var in io.Reader = stdin
	if file != "" && file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close()
		in = f
	}

	out := bufio.NewWriter(stdout)
	defer out.Flush()

	if multi {
		if *lines {
			fmt.Fprintln(stderr, "rsonpath: multiple queries are not supported with -lines")
			return exitUsage
		}
		if *index {
			if err := runIndexed(queries, opts, in, out, stderr, *count, *offsets, *explain); err != nil {
				if _, bad := err.(*badQueryError); bad {
					fmt.Fprintln(stderr, "rsonpath:", err)
					return exitUsage
				}
				return fail(stderr, err)
			}
			return exitOK
		}
		set, err := rsonpath.CompileSet(queries, opts...)
		if err != nil {
			fmt.Fprintln(stderr, "rsonpath:", err)
			return exitUsage
		}
		if *explain {
			fmt.Fprintln(stderr, "rsonpath: plan:", set.Explain(rsonpath.DocStats{}))
		}
		if err := runSet(set, in, out, *count, *offsets); err != nil {
			return fail(stderr, err)
		}
		return exitOK
	}

	q, err := rsonpath.Compile(queries[0], opts...)
	if err != nil {
		fmt.Fprintln(stderr, "rsonpath:", err)
		return exitUsage
	}
	if *explain {
		// The cold-run plan: document stats are unknown before the scan.
		fmt.Fprintln(stderr, "rsonpath: plan:", q.Explain(rsonpath.DocStats{}))
	}

	if *lines {
		return runLines(q, in, out, stderr, *count, *offsets, *parallel)
	}

	if kind == rsonpath.EngineDOM {
		if err := runOneBuffered(q, in, out, *count, *offsets); err != nil {
			return fail(stderr, err)
		}
		return exitOK
	}
	if file != "" && file != "-" && (*count || *offsets) {
		// A named file can be reopened, so the degradation ladder can re-run
		// the query from the start on an internal fault.
		return runOneSupervised(q, file, out, stderr, *count)
	}
	if err := runOne(q, in, out, *count, *offsets); err != nil {
		return fail(stderr, err)
	}
	return exitOK
}

// runOneSupervised evaluates count or offsets mode over a reopenable file
// under the execution supervisor. Output is delivered only once the run
// settles; a degraded run warns on stderr and exits with exitDegraded.
func runOneSupervised(q *rsonpath.Query, path string, out *bufio.Writer, stderr io.Writer, count bool) int {
	open := func() (io.Reader, error) { return os.Open(path) }
	n := 0
	emit := func(pos int) { fmt.Fprintln(out, pos) }
	if count {
		emit = func(int) { n++ }
	}
	oc, err := q.RunReaderSupervised(context.Background(), open, emit)
	if err != nil {
		return fail(stderr, err)
	}
	if count {
		fmt.Fprintln(out, n)
	}
	if oc.Degraded() {
		fmt.Fprintf(stderr, "rsonpath: degraded to the %s oracle after %d attempt(s): %v\n",
			oc.Engine, oc.Attempts, oc.FallbackReason)
		return exitDegraded
	}
	return exitOK
}

// fail prints the error and maps it to the documented exit code. The typed
// errors carry their byte offset in the message.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "rsonpath:", err)
	var me *rsonpath.MalformedError
	var le *rsonpath.LimitError
	var ie *rsonpath.InternalError
	switch {
	case errors.As(err, &me):
		return exitMalformed
	case errors.As(err, &le):
		return exitLimit
	case errors.As(err, &ie):
		return exitInternal
	default:
		return exitIO
	}
}

// runOne streams the document through the query with memory bounded by the
// stream window, whatever the document size.
func runOne(q *rsonpath.Query, in io.Reader, out *bufio.Writer, count, offsets bool) error {
	switch {
	case count:
		n, err := q.CountReader(in)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, n)
		return nil
	case offsets:
		return q.RunReader(in, func(pos int) {
			fmt.Fprintln(out, pos)
		})
	default:
		return q.RunReaderValues(in, func(_ int, v []byte) {
			out.Write(v)
			out.WriteByte('\n')
		})
	}
}

// runOneBuffered reads the whole document first — the only mode EngineDOM
// supports.
func runOneBuffered(q *rsonpath.Query, in io.Reader, out *bufio.Writer, count, offsets bool) error {
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	switch {
	case count:
		n, err := q.Count(data)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, n)
	case offsets:
		offs, err := q.MatchOffsets(data)
		if err != nil {
			return err
		}
		for _, o := range offs {
			fmt.Fprintln(out, o)
		}
	default:
		var runErr error
		err := q.Run(data, func(pos int) {
			if runErr != nil {
				return
			}
			v, err := rsonpath.ValueAt(data, pos)
			if err != nil {
				runErr = err
				return
			}
			out.Write(v)
			out.WriteByte('\n')
		})
		if err != nil {
			return err
		}
		if runErr != nil {
			return runErr
		}
	}
	return nil
}

// runSet evaluates a QuerySet in one pass, tagging every output line with
// the query's index. Counts and offsets stream with bounded memory; value
// output buffers the document, since extraction needs to revisit matches
// after the shared pass has moved on.
func runSet(set *rsonpath.QuerySet, in io.Reader, out *bufio.Writer, count, offsets bool) error {
	switch {
	case count:
		counts := make([]int, set.Len())
		if err := set.RunReader(in, func(q, _ int) { counts[q]++ }); err != nil {
			return err
		}
		for i, n := range counts {
			fmt.Fprintf(out, "%d:%d\n", i, n)
		}
	case offsets:
		if err := set.RunReader(in, func(q, pos int) {
			fmt.Fprintf(out, "%d:%d\n", q, pos)
		}); err != nil {
			return err
		}
	default:
		data, err := io.ReadAll(in)
		if err != nil {
			return err
		}
		var runErr error
		err = set.Run(data, func(q, pos int) {
			if runErr != nil {
				return
			}
			v, err := rsonpath.ValueAt(data, pos)
			if err != nil {
				runErr = err
				return
			}
			fmt.Fprintf(out, "%d:", q)
			out.Write(v)
			out.WriteByte('\n')
		})
		if err != nil {
			return err
		}
		if runErr != nil {
			return runErr
		}
	}
	return nil
}

// badQueryError marks a compile failure in runIndexed so run can map it to
// the usage exit code like the other compile paths.
type badQueryError struct{ err error }

func (e *badQueryError) Error() string { return e.err.Error() }
func (e *badQueryError) Unwrap() error { return e.err }

// runIndexed buffers the whole document, classifies it once into a reusable
// mask index, and evaluates each query against the index in turn — the
// repeated-query counterpart of runSet's one shared pass. Output lines carry
// the query index prefix, like runSet.
func runIndexed(queries []string, opts []rsonpath.Option, in io.Reader, out *bufio.Writer, stderr io.Writer, count, offsets, explain bool) error {
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	doc, err := rsonpath.Index(data)
	if err != nil {
		return err
	}
	for i, src := range queries {
		q, err := rsonpath.Compile(src, opts...)
		if err != nil {
			return &badQueryError{fmt.Errorf("query %d (%s): %w", i, src, err)}
		}
		if explain {
			fmt.Fprintf(stderr, "rsonpath: plan %d: %s\n", i,
				q.Explain(rsonpath.DocStats{Bytes: len(data), Indexed: true}))
		}
		switch {
		case count:
			n, err := q.CountIndexed(doc)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%d:%d\n", i, n)
		case offsets:
			if err := q.RunIndexed(doc, func(pos int) {
				fmt.Fprintf(out, "%d:%d\n", i, pos)
			}); err != nil {
				return err
			}
		default:
			var runErr error
			err := q.RunIndexed(doc, func(pos int) {
				if runErr != nil {
					return
				}
				v, err := rsonpath.ValueAt(data, pos)
				if err != nil {
					runErr = err
					return
				}
				fmt.Fprintf(out, "%d:", i)
				out.Write(v)
				out.WriteByte('\n')
			})
			if err != nil {
				return err
			}
			if runErr != nil {
				return runErr
			}
		}
	}
	return nil
}

// readQueryFile loads one query per line, skipping blank lines and
// #-comments.
func readQueryFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var queries []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		queries = append(queries, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return queries, nil
}

// runLines streams newline-delimited records with bounded memory, with a
// worker pool when workers != 1. A record that fails to evaluate is reported
// to stderr with its line number and skipped; a record rescued by the
// degradation ladder is reported but its matches still count. The scan
// continues either way, and the exit code reflects the worst record seen
// (malformed input wins over a tripped limit; a degraded record alone yields
// exitDegraded).
func runLines(q *rsonpath.Query, in io.Reader, out *bufio.Writer, stderr io.Writer, count, offsets bool, workers int) int {
	total := 0
	bad := 0
	degraded := 0
	code := exitOK
	visit := func(m rsonpath.LineMatch) error {
		if m.Err != nil {
			bad++
			fmt.Fprintf(stderr, "rsonpath: line %d: %v\n", m.Line, m.Err)
			if c := fail(io.Discard, m.Err); code == exitOK || code == exitDegraded || c == exitMalformed {
				code = c
			}
			return nil
		}
		if m.Outcome != nil && m.Outcome.Degraded() {
			degraded++
			fmt.Fprintf(stderr, "rsonpath: line %d: degraded to the %s oracle: %v\n",
				m.Line, m.Outcome.Engine, m.Outcome.FallbackReason)
		}
		switch {
		case count:
			total += len(m.Offsets)
		case offsets:
			for _, o := range m.Offsets {
				fmt.Fprintf(out, "%d:%d\n", m.Line, o)
			}
		default:
			for _, o := range m.Offsets {
				v, err := rsonpath.ValueAt(m.Record, o)
				if err != nil {
					return err
				}
				out.Write(v)
				out.WriteByte('\n')
			}
		}
		return nil
	}
	var err error
	if workers == 1 {
		err = q.RunLines(in, visit)
	} else {
		err = q.RunLinesParallel(in, workers, visit)
	}
	if err != nil {
		return fail(stderr, err)
	}
	if count {
		fmt.Fprintln(out, total)
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "rsonpath: %d record(s) skipped\n", bad)
	}
	if code == exitOK && degraded > 0 {
		code = exitDegraded
	}
	return code
}

// engineKind resolves the -engine flag. "auto" (the default) leaves the
// choice to the execution planner; any named engine is a forced constraint
// (rsonpath.WithEngine).
func engineKind(name string) (kind rsonpath.EngineKind, forced bool, err error) {
	switch name {
	case "auto":
		return rsonpath.EngineRsonpath, false, nil
	case "rsonpath":
		return rsonpath.EngineRsonpath, true, nil
	case "surfer":
		return rsonpath.EngineSurfer, true, nil
	case "ski":
		return rsonpath.EngineSki, true, nil
	case "stackless":
		return rsonpath.EngineStackless, true, nil
	case "dom":
		return rsonpath.EngineDOM, true, nil
	default:
		return 0, false, fmt.Errorf("unknown engine %q (want auto, rsonpath, surfer, ski, stackless, or dom)", name)
	}
}
