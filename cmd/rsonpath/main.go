// Command rsonpath runs a JSONPath query over a JSON document (a file or
// standard input) and prints the matched values, offsets, or a count.
//
// Usage:
//
//	rsonpath [flags] <query> [file]
//
// Examples:
//
//	rsonpath '$..user.name' tweets.json
//	rsonpath -count '$.products[*].id' products.json
//	cat doc.json | rsonpath -offsets '$..url'
//	rsonpath -lines '$.event' log.jsonl     # newline-delimited JSON
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"rsonpath"
)

func main() {
	var (
		count   = flag.Bool("count", false, "print only the number of matches")
		offsets = flag.Bool("offsets", false, "print byte offsets instead of values")
		engine  = flag.String("engine", "rsonpath", "engine: rsonpath, surfer, ski, or dom")
		lines   = flag.Bool("lines", false, "treat input as newline-delimited JSON records")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rsonpath [flags] <query> [file]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 || flag.NArg() > 2 {
		flag.Usage()
		os.Exit(2)
	}

	kind, err := engineKind(*engine)
	if err != nil {
		fatal(err)
	}
	q, err := rsonpath.Compile(flag.Arg(0), rsonpath.WithEngine(kind))
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() == 2 {
		f, err := os.Open(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *lines {
		if err := runLines(q, in, out, *count, *offsets); err != nil {
			fatal(err)
		}
		return
	}

	data, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	switch {
	case *count:
		n, err := q.Count(data)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, n)
	case *offsets:
		offs, err := q.MatchOffsets(data)
		if err != nil {
			fatal(err)
		}
		for _, o := range offs {
			fmt.Fprintln(out, o)
		}
	default:
		var runErr error
		err := q.Run(data, func(pos int) {
			if runErr != nil {
				return
			}
			v, err := rsonpath.ValueAt(data, pos)
			if err != nil {
				runErr = err
				return
			}
			out.Write(v)
			out.WriteByte('\n')
		})
		if err != nil {
			fatal(err)
		}
		if runErr != nil {
			fatal(runErr)
		}
	}
}

// runLines streams newline-delimited records with bounded memory.
func runLines(q *rsonpath.Query, in io.Reader, out *bufio.Writer, count, offsets bool) error {
	total := 0
	err := q.RunLines(in, func(m rsonpath.LineMatch) error {
		switch {
		case count:
			total += len(m.Offsets)
		case offsets:
			for _, o := range m.Offsets {
				fmt.Fprintf(out, "%d:%d\n", m.Line, o)
			}
		default:
			for _, o := range m.Offsets {
				v, err := rsonpath.ValueAt(m.Record, o)
				if err != nil {
					return err
				}
				out.Write(v)
				out.WriteByte('\n')
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if count {
		fmt.Fprintln(out, total)
	}
	return nil
}

func engineKind(name string) (rsonpath.EngineKind, error) {
	switch name {
	case "rsonpath":
		return rsonpath.EngineRsonpath, nil
	case "surfer":
		return rsonpath.EngineSurfer, nil
	case "ski":
		return rsonpath.EngineSki, nil
	case "dom":
		return rsonpath.EngineDOM, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want rsonpath, surfer, ski, or dom)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rsonpath:", err)
	os.Exit(1)
}
