package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain lets the test binary serve as its own cluster worker: the parent
// re-execs os.Executable() with the RSONPATHD_WORKER marker set, which for a
// test binary is the binary running this function.
func TestMain(m *testing.M) {
	if os.Getenv("RSONPATHD_WORKER") == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestClusterModeServes boots -shards 2, queries through the router, checks
// the aggregate health view, and expects a clean rolling drain on
// cancellation.
func TestClusterModeServes(t *testing.T) {
	base, cancel, exit := startDaemon(t, "-shards", "2", "-version", "cluster-e2e")
	defer cancel()

	// Workers come up asynchronously; wait for the router to report both.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && strings.Contains(string(out), `"routable":2`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never became fully routable; last healthz: %d %s", resp.StatusCode, out)
		}
		time.Sleep(50 * time.Millisecond)
	}

	body := `{"query": "$..b", "mode": "count", "document": {"a": {"b": 1}, "b": 2}}`
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"count":2`) {
		t.Fatalf("query status %d body %s", resp.StatusCode, out)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), "rsonpathd_cluster_proxied_total") {
		t.Fatalf("router metrics missing cluster counters:\n%.400s", out)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster did not drain after cancellation")
	}
}

// TestClusterFlagValidation rejects contradictory mode flags.
func TestClusterFlagValidation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	code := run(ctx, []string{"-shards", "2", "-worker-socket", "/tmp/x.sock"}, io.Discard, io.Discard)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for -shards with -worker-socket", code)
	}
}
