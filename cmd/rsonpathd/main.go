// Command rsonpathd is the JSONPath query daemon: a long-running HTTP/JSON
// service that keeps compiled queries hot in an LRU cache, optionally
// indexes documents it sees repeatedly, runs every request under the
// execution supervisor with a per-request deadline, and reports degraded
// requests in responses and metrics. See DESIGN.md §12.
//
// Usage:
//
//	rsonpathd [flags]
//
// Endpoints:
//
//	POST /v1/query   evaluate a query (JSON envelope, raw document with
//	                 ?query=..., or NDJSON body with ?query=...)
//	GET  /healthz    liveness probe
//	GET  /metrics    Prometheus-style counters
//	GET  /version    build identification
//
// Examples:
//
//	rsonpathd -addr :8077 -timeout 2s
//	rsonpathd -addr :8077 -shards 4
//	curl -s localhost:8077/v1/query -d '{"query": "$..price", "document": {"price": 9}, "mode": "count"}'
//	curl -s 'localhost:8077/v1/query?query=%24..price&mode=count' --data-binary @doc.json
//	curl -s 'localhost:8077/v1/query?query=%24.event' -H 'Content-Type: application/x-ndjson' --data-binary @log.jsonl
//
// With -shards N > 1 the daemon becomes a crash-isolated cluster
// (DESIGN.md §15): it re-execs itself as N shared-nothing worker processes
// on per-worker unix sockets and serves as their supervisor and front
// router. Workers that crash are restarted under exponential backoff;
// persistent crash-loopers are quarantined and the service degrades to the
// surviving shards.
//
// Signals: SIGINT/SIGTERM drain gracefully — the listener closes
// immediately, in-flight requests finish under the -drain deadline, then
// remaining connections are closed forcibly (in cluster mode the workers
// are then drained one at a time, never two down at once). SIGHUP flushes
// the caches and resets brownout/breaker state without restarting — fanned
// out to every worker in cluster mode, where it also revives quarantined
// shards.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"rsonpath/internal/cluster"
	"rsonpath/internal/server"
	"rsonpath/internal/simd"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// daemon in-process: ctx cancellation plays the role of SIGINT/SIGTERM.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rsonpathd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8077", "listen address")
		queryCache = fs.Int("query-cache", 256, "compiled-query LRU capacity")
		docCache   = fs.Int("doc-cache", 128, "indexed-document LRU capacity (0 = off)")
		docAfter   = fs.Int("doc-cache-after", 0, "sightings of a document before its index is built (0 = execution planner decides)")
		timeout    = fs.Duration("timeout", 2*time.Second, "watchdog deadline per request (per record for NDJSON; 0 = none)")
		fallback   = fs.String("fallback", "on", "degrade to the DOM oracle on internal faults: on or off")
		retry      = fs.Int("retry", 0, "retries of a request's streaming attempts on transient read errors")
		retryWait  = fs.Duration("retry-backoff", 50*time.Millisecond, "sleep between retries")
		maxDepth   = fs.Int("max-depth", 0, "document nesting limit (0 = default, negative = unlimited)")
		maxMatch   = fs.Int("max-matches", 0, "abort a run after this many matches (0 = unlimited)")
		maxBytes   = fs.Int("max-doc-bytes", 0, "largest document accepted by a run, in bytes (0 = unlimited)")
		maxBody    = fs.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "largest HTTP request body accepted, in bytes")
		maxConc    = fs.Int("max-concurrency", 0, "admission gate weight capacity (0 = 8 x GOMAXPROCS)")
		admitQueue = fs.Int("admission-queue", 0, "admission wait-queue depth (0 = 2 x capacity, negative = no queue)")
		maxBytes2  = fs.Int64("max-inflight-bytes", 0, "summed payload bytes admitted concurrently (0 = default budget, negative = unlimited)")
		brownout   = fs.Bool("brownout", true, "step down the degradation ladder under sustained queue pressure")
		breaker    = fs.Bool("breaker", true, "circuit-break the DOM-oracle fallback when internal faults flood")
		docBytes   = fs.Int64("doc-cache-bytes", 0, "resident-byte bound on the indexed-document cache (0 = entry-count bound only)")
		bodyRead   = fs.Duration("body-read-timeout", 30*time.Second, "deadline for reading an admitted request body (0 = none)")
		parallel   = fs.Int("parallel", 0, "NDJSON worker-pool width (0 = GOMAXPROCS)")
		simdPick   = fs.String("simd", os.Getenv(simd.EnvBackend), "force a classification kernel backend (swar, avx2; default: best for this CPU, or $"+simd.EnvBackend+"); reported by /version and /metrics")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		version    = fs.String("version", "dev", "version string reported by /version")

		// Cluster mode (parent) flags.
		shards        = fs.Int("shards", 1, "worker processes; >1 runs the crash-isolated cluster")
		socketDir     = fs.String("socket-dir", "", "directory for per-worker unix sockets (empty = private temp dir)")
		restartWait   = fs.Duration("restart-backoff", 100*time.Millisecond, "delay before restarting a crashed worker, doubling per crash-loop crash")
		restartMax    = fs.Duration("max-restart-backoff", 5*time.Second, "restart backoff ceiling")
		crashLoopN    = fs.Int("crash-loop-threshold", 5, "consecutive fast crashes before a worker is quarantined")
		crashLoopWin  = fs.Duration("crash-loop-window", time.Second, "uptime under which a crash counts toward the crash loop")
		affinitySlack = fs.Int64("affinity-slack", 4, "in-flight surplus the document-affinity worker may carry and still win the route")

		// Worker mode flags, set by the parent's re-exec; not for operators.
		workerSocket = fs.String("worker-socket", "", "serve one cluster shard on this unix socket (internal)")
		workerShard  = fs.Int("worker-shard", 0, "shard index reported by this worker (internal)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "rsonpathd: unexpected arguments:", fs.Args())
		return 2
	}
	if *fallback != "on" && *fallback != "off" {
		fmt.Fprintf(stderr, "rsonpathd: -fallback must be on or off, not %q\n", *fallback)
		return 2
	}
	if *simdPick != "" {
		// Applied before any server (or worker re-exec: workerArgs forwards
		// the flag) touches a document; also covers the cluster parent.
		if err := simd.SetBackend(*simdPick); err != nil {
			fmt.Fprintln(stderr, "rsonpathd:", err)
			return 2
		}
	}
	if *shards > 1 && *workerSocket != "" {
		fmt.Fprintln(stderr, "rsonpathd: -shards and -worker-socket are mutually exclusive")
		return 2
	}

	if *shards > 1 {
		return runCluster(ctx, fs, clusterOpts{
			addr: *addr, shards: *shards, socketDir: *socketDir,
			restartBackoff: *restartWait, maxRestartBackoff: *restartMax,
			crashLoopThreshold: *crashLoopN, crashLoopWindow: *crashLoopWin,
			affinitySlack: *affinitySlack, maxBody: *maxBody,
			drain: *drain, version: *version,
		}, stdout, stderr)
	}

	listenAddr := *addr
	shardName := ""
	if *workerSocket != "" {
		listenAddr = "unix:" + *workerSocket
		shardName = strconv.Itoa(*workerShard)
	}

	srv := server.New(server.Config{
		Addr:             listenAddr,
		Shard:            shardName,
		QueryCacheSize:   *queryCache,
		DocCacheSize:     *docCache,
		DocCacheAfter:    *docAfter,
		Timeout:          *timeout,
		FallbackOff:      *fallback == "off",
		RetryMax:         *retry,
		RetryBackoff:     *retryWait,
		MaxDepth:         *maxDepth,
		MaxMatches:       *maxMatch,
		MaxDocBytes:      *maxBytes,
		MaxBodyBytes:     *maxBody,
		MaxConcurrency:   *maxConc,
		AdmissionQueue:   *admitQueue,
		MaxInflightBytes: *maxBytes2,
		Brownout:         *brownout,
		Breaker:          *breaker,
		DocCacheBytes:    *docBytes,
		BodyReadTimeout:  *bodyRead,
		Workers:          *parallel,
		Version:          *version,
	})
	if err := srv.Listen(); err != nil {
		fmt.Fprintln(stderr, "rsonpathd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "rsonpathd: listening on %s\n", srv.Addr())

	// SIGHUP: flush caches, reset brownout/breaker state, keep serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	hupDone := make(chan struct{})
	defer close(hupDone)
	go func() {
		for {
			select {
			case <-hup:
				srv.Flush()
				fmt.Fprintln(stderr, "rsonpathd: SIGHUP: flushed caches and reset admission state")
			case <-hupDone:
				return
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(stderr, "rsonpathd:", err)
			return 1
		}
		return 0
	case <-ctx.Done():
		fmt.Fprintf(stderr, "rsonpathd: shutting down, draining for up to %s\n", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintln(stderr, "rsonpathd: drain deadline exceeded; connections closed")
		}
		if err := <-serveErr; err != nil {
			fmt.Fprintln(stderr, "rsonpathd:", err)
			return 1
		}
		return 0
	}
}

// clusterOpts carries the parsed cluster-parent flags.
type clusterOpts struct {
	addr               string
	shards             int
	socketDir          string
	restartBackoff     time.Duration
	maxRestartBackoff  time.Duration
	crashLoopThreshold int
	crashLoopWindow    time.Duration
	affinitySlack      int64
	maxBody            int64
	drain              time.Duration
	version            string
}

// clusterOnlyFlags are the flags that steer the parent and must not be
// forwarded to workers (a forwarded -shards would fork-bomb).
var clusterOnlyFlags = map[string]bool{
	"shards": true, "addr": true, "socket-dir": true,
	"restart-backoff": true, "max-restart-backoff": true,
	"crash-loop-threshold": true, "crash-loop-window": true,
	"affinity-slack": true,
}

// workerArgs rebuilds the command line for a worker re-exec: every server
// flag the operator set, minus the cluster-only ones, plus the worker
// identity. Rebuilding from parsed values (rather than scrubbing the raw
// argv) handles both -flag value and -flag=value spellings for free.
func workerArgs(fs *flag.FlagSet, shard int, socket string) []string {
	var argv []string
	fs.Visit(func(f *flag.Flag) {
		if clusterOnlyFlags[f.Name] {
			return
		}
		argv = append(argv, "-"+f.Name+"="+f.Value.String())
	})
	return append(argv,
		"-worker-socket="+socket,
		"-worker-shard="+strconv.Itoa(shard))
}

// runCluster is the -shards N parent: supervisor plus front router.
func runCluster(ctx context.Context, fs *flag.FlagSet, o clusterOpts, stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "rsonpathd: cannot locate own binary for worker re-exec:", err)
		return 1
	}
	cl, err := cluster.New(cluster.Config{
		Shards:    o.shards,
		Addr:      o.addr,
		SocketDir: o.socketDir,
		WorkerCommand: func(shard int, socket string) *exec.Cmd {
			cmd := exec.Command(exe, workerArgs(fs, shard, socket)...)
			// The marker lets a test binary hosting run() recognize its own
			// re-exec and dispatch back into run() instead of the test driver;
			// the production binary ignores it.
			cmd.Env = append(os.Environ(), "RSONPATHD_WORKER=1")
			cmd.Stdout = stdout
			cmd.Stderr = stderr
			return cmd
		},
		RestartBackoff:     o.restartBackoff,
		MaxRestartBackoff:  o.maxRestartBackoff,
		CrashLoopWindow:    o.crashLoopWindow,
		CrashLoopThreshold: o.crashLoopThreshold,
		DrainTimeout:       o.drain,
		AffinitySlack:      o.affinitySlack,
		MaxBodyBytes:       o.maxBody,
		Version:            o.version,
		Log:                stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "rsonpathd:", err)
		return 1
	}
	if err := cl.Start(); err != nil {
		fmt.Fprintln(stderr, "rsonpathd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "rsonpathd: listening on %s\n", cl.Addr())
	fmt.Fprintf(stdout, "rsonpathd: cluster mode, %d worker shards\n", o.shards)

	// SIGHUP fans out to the workers and revives quarantined shards.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	hupDone := make(chan struct{})
	defer close(hupDone)
	go func() {
		for {
			select {
			case <-hup:
				cl.SignalWorkers(syscall.SIGHUP)
				fmt.Fprintln(stderr, "rsonpathd: SIGHUP: flushing worker caches, reviving quarantined shards")
			case <-hupDone:
				return
			}
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- cl.Serve() }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(stderr, "rsonpathd:", err)
			return 1
		}
		return 0
	case <-ctx.Done():
		fmt.Fprintf(stderr, "rsonpathd: shutting down, rolling worker drain for up to %s each\n", o.drain)
		dctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := cl.Shutdown(dctx); err != nil {
			fmt.Fprintln(stderr, "rsonpathd: drain deadline exceeded; connections closed")
		}
		if err := <-serveErr; err != nil {
			fmt.Fprintln(stderr, "rsonpathd:", err)
			return 1
		}
		return 0
	}
}
