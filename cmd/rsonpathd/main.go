// Command rsonpathd is the JSONPath query daemon: a long-running HTTP/JSON
// service that keeps compiled queries hot in an LRU cache, optionally
// indexes documents it sees repeatedly, runs every request under the
// execution supervisor with a per-request deadline, and reports degraded
// requests in responses and metrics. See DESIGN.md §12.
//
// Usage:
//
//	rsonpathd [flags]
//
// Endpoints:
//
//	POST /v1/query   evaluate a query (JSON envelope, raw document with
//	                 ?query=..., or NDJSON body with ?query=...)
//	GET  /healthz    liveness probe
//	GET  /metrics    Prometheus-style counters
//	GET  /version    build identification
//
// Examples:
//
//	rsonpathd -addr :8077 -timeout 2s
//	curl -s localhost:8077/v1/query -d '{"query": "$..price", "document": {"price": 9}, "mode": "count"}'
//	curl -s 'localhost:8077/v1/query?query=%24..price&mode=count' --data-binary @doc.json
//	curl -s 'localhost:8077/v1/query?query=%24.event' -H 'Content-Type: application/x-ndjson' --data-binary @log.jsonl
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests finish under the -drain deadline, then
// remaining connections are closed forcibly.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsonpath/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment made explicit so tests can drive the
// daemon in-process: ctx cancellation plays the role of SIGINT/SIGTERM.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rsonpathd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8077", "listen address")
		queryCache = fs.Int("query-cache", 256, "compiled-query LRU capacity")
		docCache   = fs.Int("doc-cache", 128, "indexed-document LRU capacity (0 = off)")
		docAfter   = fs.Int("doc-cache-after", 0, "sightings of a document before its index is built (0 = execution planner decides)")
		timeout    = fs.Duration("timeout", 2*time.Second, "watchdog deadline per request (per record for NDJSON; 0 = none)")
		fallback   = fs.String("fallback", "on", "degrade to the DOM oracle on internal faults: on or off")
		retry      = fs.Int("retry", 0, "retries of a request's streaming attempts on transient read errors")
		retryWait  = fs.Duration("retry-backoff", 50*time.Millisecond, "sleep between retries")
		maxDepth   = fs.Int("max-depth", 0, "document nesting limit (0 = default, negative = unlimited)")
		maxMatch   = fs.Int("max-matches", 0, "abort a run after this many matches (0 = unlimited)")
		maxBytes   = fs.Int("max-doc-bytes", 0, "largest document accepted by a run, in bytes (0 = unlimited)")
		maxBody    = fs.Int64("max-body-bytes", server.DefaultMaxBodyBytes, "largest HTTP request body accepted, in bytes")
		maxConc    = fs.Int("max-concurrency", 0, "admission gate weight capacity (0 = 8 x GOMAXPROCS)")
		admitQueue = fs.Int("admission-queue", 0, "admission wait-queue depth (0 = 2 x capacity, negative = no queue)")
		maxBytes2  = fs.Int64("max-inflight-bytes", 0, "summed payload bytes admitted concurrently (0 = default budget, negative = unlimited)")
		brownout   = fs.Bool("brownout", true, "step down the degradation ladder under sustained queue pressure")
		breaker    = fs.Bool("breaker", true, "circuit-break the DOM-oracle fallback when internal faults flood")
		docBytes   = fs.Int64("doc-cache-bytes", 0, "resident-byte bound on the indexed-document cache (0 = entry-count bound only)")
		bodyRead   = fs.Duration("body-read-timeout", 30*time.Second, "deadline for reading an admitted request body (0 = none)")
		parallel   = fs.Int("parallel", 0, "NDJSON worker-pool width (0 = GOMAXPROCS)")
		drain      = fs.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		version    = fs.String("version", "dev", "version string reported by /version")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "rsonpathd: unexpected arguments:", fs.Args())
		return 2
	}
	if *fallback != "on" && *fallback != "off" {
		fmt.Fprintf(stderr, "rsonpathd: -fallback must be on or off, not %q\n", *fallback)
		return 2
	}

	srv := server.New(server.Config{
		Addr:             *addr,
		QueryCacheSize:   *queryCache,
		DocCacheSize:     *docCache,
		DocCacheAfter:    *docAfter,
		Timeout:          *timeout,
		FallbackOff:      *fallback == "off",
		RetryMax:         *retry,
		RetryBackoff:     *retryWait,
		MaxDepth:         *maxDepth,
		MaxMatches:       *maxMatch,
		MaxDocBytes:      *maxBytes,
		MaxBodyBytes:     *maxBody,
		MaxConcurrency:   *maxConc,
		AdmissionQueue:   *admitQueue,
		MaxInflightBytes: *maxBytes2,
		Brownout:         *brownout,
		Breaker:          *breaker,
		DocCacheBytes:    *docBytes,
		BodyReadTimeout:  *bodyRead,
		Workers:          *parallel,
		Version:          *version,
	})
	if err := srv.Listen(); err != nil {
		fmt.Fprintln(stderr, "rsonpathd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "rsonpathd: listening on %s\n", srv.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(stderr, "rsonpathd:", err)
			return 1
		}
		return 0
	case <-ctx.Done():
		fmt.Fprintf(stderr, "rsonpathd: shutting down, draining for up to %s\n", *drain)
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fmt.Fprintln(stderr, "rsonpathd: drain deadline exceeded; connections closed")
		}
		if err := <-serveErr; err != nil {
			fmt.Fprintln(stderr, "rsonpathd:", err)
			return 1
		}
		return 0
	}
}
