package main

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"rsonpath/internal/simd"
)

// startDaemon runs the daemon's run() in-process on a loopback port and
// returns its base URL plus the cancel that plays the role of SIGTERM and a
// channel carrying the exit code.
func startDaemon(t *testing.T, extraArgs ...string) (base string, cancel context.CancelFunc, exit chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	exit = make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-drain", "2s"}, extraArgs...)
	go func() { exit <- run(ctx, args, pw, io.Discard) }()

	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading listen line: %v", err)
	}
	go io.Copy(io.Discard, pr) // drain any later output
	const prefix = "rsonpathd: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected first line %q", line)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, prefix))
	return "http://" + addr, cancel, exit
}

// TestDaemonServesAndDrains boots the daemon, queries it over a real
// connection, then cancels the context and expects a clean exit.
func TestDaemonServesAndDrains(t *testing.T) {
	base, cancel, exit := startDaemon(t, "-timeout", "5s", "-version", "test")
	defer cancel()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	body := `{"query": "$..b", "mode": "count", "document": {"a": {"b": 1}, "b": 2}}`
	resp, err = http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d body=%s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), `"count": 2`) && !strings.Contains(string(out), `"count":2`) {
		t.Fatalf("query body = %s, want count 2", out)
	}

	resp, err = http.Get(base + "/version")
	if err != nil {
		t.Fatalf("version: %v", err)
	}
	out, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), `"test"`) {
		t.Fatalf("version body = %s, want the -version flag echoed", out)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not exit after cancellation")
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestDaemonFlagValidation covers rejected invocations.
func TestDaemonFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-fallback", "sometimes"},
		{"-no-such-flag"},
		{"positional"},
	}
	for i, args := range cases {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		code := run(ctx, args, io.Discard, io.Discard)
		cancel()
		if code != 2 {
			t.Errorf("case %d (%v): exit = %d, want 2", i, args, code)
		}
	}
}

// TestDaemonSimdFlag round-trips the -simd override: every available
// backend boots a daemon whose /version reports that backend, and an
// unavailable backend is a usage error, not a silent fallback.
func TestDaemonSimdFlag(t *testing.T) {
	prev := simd.Backend()
	defer func() {
		if err := simd.SetBackend(prev); err != nil {
			t.Fatalf("restoring backend %q: %v", prev, err)
		}
	}()
	for _, name := range simd.Backends() {
		base, cancel, exit := startDaemon(t, "-simd", name)
		resp, err := http.Get(base + "/version")
		if err != nil {
			t.Fatalf("-simd %s: version: %v", name, err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if want := `"simd":"` + name + `"`; !strings.Contains(string(out), want) {
			t.Errorf("-simd %s: /version = %s, want %s", name, out, want)
		}
		cancel()
		select {
		case <-exit:
		case <-time.After(5 * time.Second):
			t.Fatalf("-simd %s: daemon did not exit", name)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var stderr strings.Builder
	if code := run(ctx, []string{"-simd", "avx512-unobtainium"}, io.Discard, &stderr); code != 2 {
		t.Fatalf("unknown backend: exit = %d, want 2 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "not available") {
		t.Fatalf("unknown backend stderr = %q, want a not-available error", stderr.String())
	}
}

// TestDaemonListenError verifies a bad address is reported, not served.
func TestDaemonListenError(t *testing.T) {
	var stderr strings.Builder
	code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, io.Discard, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}

// TestDaemonConfiguredLimits verifies flags reach the server: a match limit
// of 1 turns a two-match query into HTTP 413.
func TestDaemonConfiguredLimits(t *testing.T) {
	base, cancel, exit := startDaemon(t, "-max-matches", "1")
	defer func() {
		cancel()
		<-exit
	}()
	body := `{"query": "$..b", "document": {"a": {"b": 1}, "b": 2}}`
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d body=%s, want 413 from -max-matches", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "limit") {
		t.Fatalf("body %s does not name the limit error kind", out)
	}
}
