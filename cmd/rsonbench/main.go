// Command rsonbench regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic datasets. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	rsonbench -exp all
//	rsonbench -exp a            # Experiment A (Table 4 / Figure 4)
//	rsonbench -exp b -scale 0.5 # Experiment B at half the default size
//	rsonbench -exp table2
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rsonpath/internal/bench"
	"rsonpath/internal/cluster"
	"rsonpath/internal/server"
	"rsonpath/internal/simd"
)

// chaosWorkerEnv re-enters this binary as one chaos-cluster worker process:
// the chaos experiment re-execs rsonbench itself with this variable set to
// the worker's unix socket path (plus chaosShardEnv for its shard index),
// because the experiment needs real killable OS processes, not goroutines.
const (
	chaosWorkerEnv = "RSONBENCH_CLUSTER_WORKER"
	chaosShardEnv  = "RSONBENCH_CLUSTER_SHARD"
)

func main() {
	if sock := os.Getenv(chaosWorkerEnv); sock != "" {
		os.Exit(chaosWorkerMain(sock, os.Getenv(chaosShardEnv)))
	}
	var (
		exp     = flag.String("exp", "all", "experiment: a, b, c, d, grid, multiquery, parallel_lines, swar, serve, planner, overload, chaos, table2, table3, semantics, ablation, stackless, or all")
		scale   = flag.Float64("scale", 1.0, "dataset size factor relative to DESIGN.md defaults")
		samples = flag.Int("samples", 5, "timed samples per measurement")
		seed    = flag.Int64("seed", 42, "dataset generation seed")
		jsonDir = flag.String("json", "", "directory for machine-readable results (BENCH_<exp>.json)")
	)
	flag.Parse()

	h := bench.NewHarness()
	h.SizeFactor = *scale
	h.Samples = *samples
	h.Seed = *seed

	for _, e := range strings.Split(*exp, ",") {
		if err := run(h, e, *jsonDir); err != nil {
			fmt.Fprintln(os.Stderr, "rsonbench:", err)
			os.Exit(1)
		}
	}
}

// writeJSON dumps v as DIR/BENCH_<name>.json when -json is set.
func writeJSON(dir, name string, v any) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), append(data, '\n'), 0o644)
}

func run(h *bench.Harness, exp, jsonDir string) error {
	w := os.Stdout
	switch exp {
	case "all":
		for _, e := range []string{"table2", "table3", "a", "b", "c", "d", "semantics", "ablation", "stackless", "multiquery", "parallel_lines", "swar", "serve", "planner", "overload", "grid"} {
			if err := run(h, e, jsonDir); err != nil {
				return err
			}
		}
		return nil

	case "table2":
		fmt.Fprintln(w, "== Table 2: naive vs lookup-table classification ==")
		bench.RenderTable2(w, bench.RunTable2())
		return nil

	case "table3":
		fmt.Fprintln(w, "== Table 3: dataset characteristics ==")
		rows, err := h.RunTable3()
		if err != nil {
			return err
		}
		bench.RenderTable3(w, rows, h)
		return nil

	case "a":
		results, err := h.RunGrid(bench.ExperimentSpecs("A"))
		if err != nil {
			return err
		}
		bench.RenderFigure(w, "Experiment A (Table 4 / Figure 4): descendant-free queries", results)
		return nil

	case "b":
		specs := bench.ExperimentSpecs("B")
		// Include the originals next to their rewritings, as Figure 5 does.
		var full []bench.Spec
		for _, s := range specs {
			if orig, ok := bench.SpecByID(s.RewritingOf); ok {
				full = append(full, orig)
			}
			full = append(full, s)
		}
		results, err := h.RunGrid(full)
		if err != nil {
			return err
		}
		bench.RenderFigure(w, "Experiment B (Table 5 / Figure 5): descendant rewritings", results)
		return nil

	case "c":
		results, err := h.RunGrid(bench.ExperimentSpecs("C"))
		if err != nil {
			return err
		}
		bench.RenderFigure(w, "Experiment C (Table 6 / Figure 6): limitations and opportunities", results)
		return nil

	case "d":
		fmt.Fprintln(w, "== Experiment D (Table 7): scalability, $..affiliation..name on Crossref ==")
		points, err := h.RunScalability([]float64{0.25, 0.5, 1, 2})
		if err != nil {
			return err
		}
		bench.RenderScalability(w, points)
		return nil

	case "semantics":
		fmt.Fprintln(w, "== Appendix D / Table 9: node vs path semantics ==")
		return bench.RenderSemantics(w)

	case "ablation":
		fmt.Fprintln(w, "== Ablation: skipping techniques toggled off ==")
		var specs []bench.Spec
		for _, id := range []string{"B1r", "C2r", "Tsr", "A2", "W2"} {
			if s, ok := bench.SpecByID(id); ok {
				specs = append(specs, s)
			}
		}
		results, err := h.RunAblation(specs)
		if err != nil {
			return err
		}
		bench.RenderAblation(w, results)
		return nil

	case "stackless":
		fmt.Fprintln(w, "== Simulation strategies (§3.2): depth-stack vs depth-registers ==")
		results, err := h.RunStackless()
		if err != nil {
			return err
		}
		bench.RenderAblation(w, results)
		return nil

	case "multiquery":
		fmt.Fprintln(w, "== Multi-query: one-pass QuerySet vs N independent runs ==")
		results, err := h.RunMultiQuery(bench.MultiSpecs)
		if err != nil {
			return err
		}
		bench.RenderMultiQuery(w, results)
		return writeJSON(jsonDir, "multiquery", results)

	case "parallel_lines":
		fmt.Fprintln(w, "== Parallel lines: JSON Lines worker pool vs sequential scan ==")
		results, err := h.RunParallelLines(bench.ParallelSpecs)
		if err != nil {
			return err
		}
		bench.RenderParallelLines(w, results)
		return writeJSON(jsonDir, "parallel_lines", results)

	case "swar":
		fmt.Fprintln(w, "== SWAR: batched vs per-block classification; indexed repeat queries ==")
		kernels, err := h.RunSWARKernels([]string{"crossref", "ast"})
		if err != nil {
			return err
		}
		repeat, err := h.RunIndexedRepeat("crossref", []int{1, 8, 32})
		if err != nil {
			return err
		}
		rep := bench.SWARReport{
			Backend:       simd.Backend(),
			Backends:      simd.Backends(),
			Kernels:       kernels,
			IndexedRepeat: repeat,
		}
		bench.RenderSWAR(w, rep)
		if err := writeJSON(jsonDir, "swar", rep); err != nil {
			return err
		}
		// The acceptance gate doubles as the CI smoke check: hardware
		// kernels that fail to clear the SWAR fallback by the DESIGN.md §16
		// floors fail the run.
		return bench.CheckSimd(rep)

	case "serve":
		fmt.Fprintln(w, "== Serving: rsonpathd query-cache and document-index hot paths ==")
		rep, err := h.RunServe()
		if err != nil {
			return err
		}
		bench.RenderServe(w, rep)
		return writeJSON(jsonDir, "serve", rep)

	case "planner":
		fmt.Fprintln(w, "== Planner: adaptive auto vs forced strategies ==")
		rep, err := h.RunPlanner()
		if err != nil {
			return err
		}
		bench.RenderPlanner(w, rep)
		if err := writeJSON(jsonDir, "planner", rep); err != nil {
			return err
		}
		// The acceptance gate doubles as the CI smoke check: a plan layer
		// that loses to a forced strategy fails the run.
		return bench.CheckPlanner(rep)

	case "overload":
		fmt.Fprintln(w, "== Overload: open-loop arrivals past saturation, admission control ==")
		rep, err := h.RunOverload()
		if err != nil {
			return err
		}
		bench.RenderOverload(w, rep)
		if err := writeJSON(jsonDir, "overload", rep); err != nil {
			return err
		}
		// The acceptance gate doubles as the CI overload smoke: any 5xx,
		// zero sheds past saturation, or collapsed goodput fails the run.
		return bench.CheckOverload(rep)

	case "chaos":
		fmt.Fprintln(w, "== Chaos: worker kills under open-loop load, crash isolation ==")
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("chaos: locating own binary for worker re-exec: %w", err)
		}
		// -scale shrinks the kill count so CI can run the full gate in a
		// fraction of the recorded experiment's ~50s; the invariants checked
		// per kill are identical. The floor keeps at least a couple of
		// supervised recoveries in even the smallest smoke.
		cycles := int(20*h.SizeFactor + 0.5)
		if cycles < 2 {
			cycles = 2
		}
		rep, err := h.RunChaos(func(shard int, socket string) *exec.Cmd {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				chaosWorkerEnv+"="+socket,
				chaosShardEnv+"="+strconv.Itoa(shard))
			return cmd
		}, bench.ChaosOptions{KillCycles: cycles, Log: os.Stderr})
		if err != nil {
			return err
		}
		bench.RenderChaos(w, rep)
		if err := writeJSON(jsonDir, "chaos", rep); err != nil {
			return err
		}
		// The acceptance gate doubles as the CI chaos check: any 5xx, an
		// unrecovered kill, or a parent goroutine/fd leak fails the run.
		return bench.CheckChaos(rep)

	case "grid":
		fmt.Fprintln(w, "== Appendix C: full result grid ==")
		results, err := h.RunGrid(bench.Specs)
		if err != nil {
			return err
		}
		bench.RenderGrid(w, results)
		return nil

	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

// chaosWorkerMain is the hidden worker mode: serve one shard's daemon on the
// given unix socket until the supervisor's SIGTERM (or a chaos SIGKILL ends
// things less politely).
func chaosWorkerMain(socket, shard string) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := cluster.RunWorker(ctx, server.Config{
		Timeout: 10 * time.Second,
		Shard:   shard,
		Version: "bench",
	}, socket, 10*time.Second)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsonbench worker:", err)
		return 1
	}
	return 0
}
