package rsonpath

import (
	"strings"
	"testing"
)

func TestPipelineTwoStages(t *testing.T) {
	doc := []byte(`{"users": [{"addr": {"city": "A"}}, {"addr": {"city": "B"}}], "addr": {"city": "C"}}`)
	p := NewPipeline(MustCompile("$.users.*"), MustCompile("$..city"))
	vals, err := p.MatchValues(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || string(vals[0]) != `"A"` || string(vals[1]) != `"B"` {
		t.Fatalf("values %q", vals)
	}
}

func TestPipelineEquivalentToConcatenation(t *testing.T) {
	// $.a | $..b must equal $.a..b under node semantics.
	doc := []byte(`{"a": {"x": {"b": 1}, "b": [2]}, "b": 3}`)
	p := NewPipeline(MustCompile("$.a"), MustCompile("$..b"))
	got, err := p.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MustCompile("$.a..b").MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pipeline %v, direct %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pipeline %v, direct %v", got, want)
		}
	}
}

func TestPipelineDeduplicatesOverlaps(t *testing.T) {
	// Stage 1 matches nested nodes; stage 2 must not double-report.
	doc := []byte(`{"a": {"a": {"b": 1}}}`)
	p := NewPipeline(MustCompile("$..a"), MustCompile("$..b"))
	offs, err := p.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 1 {
		t.Fatalf("offsets %v, want one (node semantics)", offs)
	}
}

func TestPipelineThreeStagesAndIdentity(t *testing.T) {
	doc := []byte(`{"a": {"b": {"c": 42}}}`)
	p := NewPipeline(MustCompile("$.a"), MustCompile("$.b"), MustCompile("$.c"))
	n, err := p.Count(doc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count %d", n)
	}
	// "$" stages are identities.
	p = NewPipeline(MustCompile("$"), MustCompile("$..c"), MustCompile("$"))
	offs, err := p.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 1 || string(doc[offs[0]]) != "4" {
		t.Fatalf("offsets %v", offs)
	}
}

func TestPipelineEmptyAndErrors(t *testing.T) {
	p := NewPipeline()
	offs, err := p.MatchOffsets([]byte(`{}`))
	if err != nil || len(offs) != 0 {
		t.Fatalf("empty pipeline: %v %v", offs, err)
	}
	p = NewPipeline(MustCompile("$.a"))
	if _, err := p.MatchOffsets([]byte(`{"a":`)); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestRunLines(t *testing.T) {
	input := strings.Join([]string{
		`{"a": 1, "b": {"a": 2}}`,
		``,
		`{"x": 0}`,
		`[{"a": 3}]`,
	}, "\n")
	q := MustCompile("$..a")
	var lines []int
	var total int
	err := q.RunLines(strings.NewReader(input), func(m LineMatch) error {
		lines = append(lines, m.Line)
		total += len(m.Offsets)
		for _, o := range m.Offsets {
			if _, err := ValueAt(m.Record, o); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || len(lines) != 2 || lines[0] != 1 || lines[1] != 4 {
		t.Fatalf("lines %v, total %d", lines, total)
	}
}

func TestCountLines(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": [1, 2]}` + "\n"
	n, err := MustCompile("$.a").CountLines(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count %d", n)
	}
}

func TestRunLinesNoTrailingNewline(t *testing.T) {
	n, err := MustCompile("$.a").CountLines(strings.NewReader(`{"a": 9}`))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestRunLinesMalformedRecord(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": ` + "\n"
	err := MustCompile("$.a").RunLines(strings.NewReader(input), func(LineMatch) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 failure", err)
	}
}

func TestRunLinesVisitErrorStops(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": 2}` + "\n"
	calls := 0
	err := MustCompile("$.a").RunLines(strings.NewReader(input), func(LineMatch) error {
		calls++
		return errTruncated // any sentinel
	})
	if err != errTruncated || calls != 1 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestRunLinesLargeRecords(t *testing.T) {
	// Records larger than the reader's buffer must still work.
	big := `{"a": "` + strings.Repeat("x", 1<<18) + `", "b": {"a": 1}}`
	input := big + "\n" + big + "\n"
	n, err := MustCompile("$..a").CountLines(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("count %d, want 4", n)
	}
}

func TestPipelineEmptyAndWhitespaceDocuments(t *testing.T) {
	p := NewPipeline(MustCompile("$.a"), MustCompile("$..b"))
	for _, doc := range []string{"", "   ", "\n\t"} {
		n, err := p.Count([]byte(doc))
		if err != nil {
			t.Errorf("Count(%q): %v", doc, err)
		}
		if n != 0 {
			t.Errorf("Count(%q) = %d, want 0", doc, n)
		}
		offs, err := p.MatchOffsets([]byte(doc))
		if err != nil {
			t.Errorf("MatchOffsets(%q): %v", doc, err)
		}
		if len(offs) != 0 {
			t.Errorf("MatchOffsets(%q) = %v, want none", doc, offs)
		}
		vals, err := p.MatchValues([]byte(doc))
		if err != nil {
			t.Errorf("MatchValues(%q): %v", doc, err)
		}
		if len(vals) != 0 {
			t.Errorf("MatchValues(%q) = %q, want none", doc, vals)
		}
	}
}
