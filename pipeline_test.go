package rsonpath

import (
	"errors"
	"strings"
	"testing"
)

func TestPipelineTwoStages(t *testing.T) {
	doc := []byte(`{"users": [{"addr": {"city": "A"}}, {"addr": {"city": "B"}}], "addr": {"city": "C"}}`)
	p := NewPipeline(MustCompile("$.users.*"), MustCompile("$..city"))
	vals, err := p.MatchValues(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || string(vals[0]) != `"A"` || string(vals[1]) != `"B"` {
		t.Fatalf("values %q", vals)
	}
}

func TestPipelineEquivalentToConcatenation(t *testing.T) {
	// $.a | $..b must equal $.a..b under node semantics.
	doc := []byte(`{"a": {"x": {"b": 1}, "b": [2]}, "b": 3}`)
	p := NewPipeline(MustCompile("$.a"), MustCompile("$..b"))
	got, err := p.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MustCompile("$.a..b").MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pipeline %v, direct %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pipeline %v, direct %v", got, want)
		}
	}
}

func TestPipelineDeduplicatesOverlaps(t *testing.T) {
	// Stage 1 matches nested nodes; stage 2 must not double-report.
	doc := []byte(`{"a": {"a": {"b": 1}}}`)
	p := NewPipeline(MustCompile("$..a"), MustCompile("$..b"))
	offs, err := p.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 1 {
		t.Fatalf("offsets %v, want one (node semantics)", offs)
	}
}

func TestPipelineThreeStagesAndIdentity(t *testing.T) {
	doc := []byte(`{"a": {"b": {"c": 42}}}`)
	p := NewPipeline(MustCompile("$.a"), MustCompile("$.b"), MustCompile("$.c"))
	n, err := p.Count(doc)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("count %d", n)
	}
	// "$" stages are identities.
	p = NewPipeline(MustCompile("$"), MustCompile("$..c"), MustCompile("$"))
	offs, err := p.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != 1 || string(doc[offs[0]]) != "4" {
		t.Fatalf("offsets %v", offs)
	}
}

func TestPipelineEmptyAndErrors(t *testing.T) {
	p := NewPipeline()
	offs, err := p.MatchOffsets([]byte(`{}`))
	if err != nil || len(offs) != 0 {
		t.Fatalf("empty pipeline: %v %v", offs, err)
	}
	p = NewPipeline(MustCompile("$.a"))
	if _, err := p.MatchOffsets([]byte(`{"a":`)); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestRunLines(t *testing.T) {
	input := strings.Join([]string{
		`{"a": 1, "b": {"a": 2}}`,
		``,
		`{"x": 0}`,
		`[{"a": 3}]`,
	}, "\n")
	q := MustCompile("$..a")
	var lines []int
	var total int
	err := q.RunLines(strings.NewReader(input), func(m LineMatch) error {
		lines = append(lines, m.Line)
		total += len(m.Offsets)
		for _, o := range m.Offsets {
			if _, err := ValueAt(m.Record, o); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || len(lines) != 2 || lines[0] != 1 || lines[1] != 4 {
		t.Fatalf("lines %v, total %d", lines, total)
	}
}

func TestCountLines(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": [1, 2]}` + "\n"
	n, failures, err := MustCompile("$.a").CountLines(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(failures) != 0 {
		t.Fatalf("count %d, failures %v", n, failures)
	}
}

func TestRunLinesNoTrailingNewline(t *testing.T) {
	n, failures, err := MustCompile("$.a").CountLines(strings.NewReader(`{"a": 9}`))
	if err != nil || n != 1 || len(failures) != 0 {
		t.Fatalf("n=%d failures=%v err=%v", n, failures, err)
	}
}

func TestRunLinesMalformedRecord(t *testing.T) {
	// A malformed record is reported to visit with a typed per-line error
	// and the scan continues with the following records.
	input := `{"a": 1}` + "\n" + `{"a": ` + "\n" + `{"a": 3}` + "\n"
	var badLine int
	var badErr error
	total := 0
	err := MustCompile("$.a").RunLines(strings.NewReader(input), func(m LineMatch) error {
		if m.Err != nil {
			badLine = m.Line
			badErr = m.Err
			return nil
		}
		total += len(m.Offsets)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if badLine != 2 {
		t.Fatalf("bad line %d, want 2", badLine)
	}
	var me *MalformedError
	if !errors.As(badErr, &me) {
		t.Fatalf("line error = %v, want *MalformedError", badErr)
	}
	if total != 2 {
		t.Fatalf("matches on good lines = %d, want 2", total)
	}
}

func TestRunLinesVisitErrorStops(t *testing.T) {
	input := `{"a": 1}` + "\n" + `{"a": 2}` + "\n"
	calls := 0
	err := MustCompile("$.a").RunLines(strings.NewReader(input), func(LineMatch) error {
		calls++
		return errTruncated // any sentinel
	})
	if err != errTruncated || calls != 1 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestRunLinesLargeRecords(t *testing.T) {
	// Records larger than the reader's buffer must still work.
	big := `{"a": "` + strings.Repeat("x", 1<<18) + `", "b": {"a": 1}}`
	input := big + "\n" + big + "\n"
	n, _, err := MustCompile("$..a").CountLines(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("count %d, want 4", n)
	}
}

func TestPipelineEmptyAndWhitespaceDocuments(t *testing.T) {
	p := NewPipeline(MustCompile("$.a"), MustCompile("$..b"))
	for _, doc := range []string{"", "   ", "\n\t"} {
		n, err := p.Count([]byte(doc))
		if err != nil {
			t.Errorf("Count(%q): %v", doc, err)
		}
		if n != 0 {
			t.Errorf("Count(%q) = %d, want 0", doc, n)
		}
		offs, err := p.MatchOffsets([]byte(doc))
		if err != nil {
			t.Errorf("MatchOffsets(%q): %v", doc, err)
		}
		if len(offs) != 0 {
			t.Errorf("MatchOffsets(%q) = %v, want none", doc, offs)
		}
		vals, err := p.MatchValues([]byte(doc))
		if err != nil {
			t.Errorf("MatchValues(%q): %v", doc, err)
		}
		if len(vals) != 0 {
			t.Errorf("MatchValues(%q) = %q, want none", doc, vals)
		}
	}
}
