package rsonpath

import (
	"context"
	"errors"
	"fmt"

	"rsonpath/internal/dom"
	"rsonpath/internal/errs"
	"rsonpath/internal/input"
)

// This file is the hardened-execution boundary of the public API: the typed
// failure vocabulary (malformed input, resource limits, cancellation,
// contained internal faults), the conversion of every internal error shape
// to it, and the panic guard wrapped around every public entry point.
//
// The failure model — what is detected where, and which detections are
// exact versus best-effort — is documented in DESIGN.md §9.

// ErrMalformed is the sentinel matched (via errors.Is) by every
// *MalformedError.
var ErrMalformed = errors.New("rsonpath: malformed JSON input")

// ErrLimitExceeded is the sentinel matched (via errors.Is) by every
// *LimitError.
var ErrLimitExceeded = errors.New("rsonpath: resource limit exceeded")

// ErrCanceled is the sentinel wrapped by errors returned from the
// RunReaderContext family when the context is canceled or its deadline
// expires; the context's own error is wrapped alongside it, so
// errors.Is(err, context.Canceled) also works.
var ErrCanceled = errors.New("rsonpath: run canceled")

// DefaultMaxDepth is the document-nesting bound applied when WithMaxDepth
// is not given: deep enough for any realistic document, shallow enough that
// no engine can be driven into unbounded stack or bitmap growth by
// pathological input (e.g. a megabyte of '[').
const DefaultMaxDepth = 10000

// MalformedError reports input that cannot be a well-formed JSON document.
// It matches ErrMalformed via errors.Is. Offsets are exact on EngineDOM and
// the strict baselines; the skipping engines report the first position at
// which the document is known to be broken, which may trail the true defect
// (best-effort detection, never a false accept of the detected classes —
// see DESIGN.md §9).
type MalformedError struct {
	// Offset is the byte offset the malformation was detected at.
	Offset int
	// Kind is a short stable description: "unterminated document",
	// "mismatched closer", "trailing content", "unterminated string", ...
	Kind string

	sentinel error // the detecting engine's internal sentinel, may be nil
}

func (e *MalformedError) Error() string {
	return fmt.Sprintf("rsonpath: malformed JSON input: %s at offset %d", e.Kind, e.Offset)
}

// Unwrap matches ErrMalformed and the detecting engine's own sentinel.
func (e *MalformedError) Unwrap() []error {
	if e.sentinel != nil {
		return []error{ErrMalformed, e.sentinel}
	}
	return []error{ErrMalformed}
}

// LimitError reports a configured resource limit being exceeded: the run
// was aborted to protect the caller, not because the input is necessarily
// malformed. It matches ErrLimitExceeded via errors.Is.
type LimitError struct {
	What   string // "depth", "matches", or "document bytes"
	Max    int    // the configured limit
	Offset int    // byte offset at which the limit tripped; -1 if unknown
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("rsonpath: %s limit %d exceeded at offset %d", e.What, e.Max, e.Offset)
}

// Unwrap matches ErrLimitExceeded.
func (e *LimitError) Unwrap() error { return ErrLimitExceeded }

// InternalError reports a panic inside the library contained at the public
// API boundary: a bug in an engine degraded to an error instead of a caller
// crash. The Engine field names the engine that was running; Offset is the
// byte position if the fault carried one, -1 otherwise.
type InternalError struct {
	Engine string
	Offset int
	Cause  string
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("rsonpath: internal error in engine %s: %s", e.Engine, e.Cause)
}

// WithMaxDepth bounds the document nesting a run will walk; deeper input
// aborts with a *LimitError. The default is DefaultMaxDepth; negative
// values disable the bound entirely (not recommended on untrusted input).
// EngineSki is exempt: its memory is bounded by the query, not the
// document, so no limit is needed (DESIGN.md §9).
func WithMaxDepth(n int) Option {
	return func(c *config) { c.maxDepth = n }
}

// WithMaxMatches bounds the number of matches a single run may emit; the
// run aborts with a *LimitError when one more match is found. 0 (the
// default) or negative disables the bound. Matches already emitted before
// the abort have been delivered to the callback.
func WithMaxMatches(n int) Option {
	return func(c *config) { c.maxMatches = n }
}

// WithMaxDocBytes bounds the document size a run will accept: in-memory
// documents are checked up front, streamed documents at window-refill
// granularity, aborting with a *LimitError. 0 (the default) or negative
// disables the bound.
func WithMaxDocBytes(n int) Option {
	return func(c *config) { c.maxDocBytes = n }
}

// limits is the resolved triple carried by Query and QuerySet; zero values
// mean "disabled" (the WithMaxDepth default is resolved at Compile time).
type limits struct {
	maxDepth    int
	maxMatches  int
	maxDocBytes int
}

// resolve translates option values (0 = default, negative = unlimited) to
// enforcement values (0 = unlimited).
func (c *config) resolveLimits() limits {
	l := limits{
		maxDepth:    c.maxDepth,
		maxMatches:  c.maxMatches,
		maxDocBytes: c.maxDocBytes,
	}
	if l.maxDepth == 0 {
		l.maxDepth = DefaultMaxDepth
	}
	if l.maxDepth < 0 {
		l.maxDepth = 0
	}
	if l.maxMatches < 0 {
		l.maxMatches = 0
	}
	if l.maxDocBytes < 0 {
		l.maxDocBytes = 0
	}
	return l
}

// checkDocBytes is the up-front size check for in-memory documents.
func (l limits) checkDocBytes(n int) error {
	if l.maxDocBytes > 0 && n > l.maxDocBytes {
		return &LimitError{What: "document bytes", Max: l.maxDocBytes, Offset: l.maxDocBytes}
	}
	return nil
}

// abortRun carries a typed error out of an emit callback through the
// engine's stack; guardRun converts it back to an ordinary return value.
// Engines keep no state across runs, so abandoning a run mid-flight is
// safe.
type abortRun struct{ err error }

// limitEmit wraps an emit callback with the match-count limit: the first
// maxMatches matches are delivered, and finding one more aborts the run
// with a *LimitError.
func (l limits) limitEmit(emit func(int)) func(int) {
	if l.maxMatches <= 0 {
		return emit
	}
	n := 0
	max := l.maxMatches
	return func(pos int) {
		if n >= max {
			panic(abortRun{errs.MatchesLimit(max, pos)})
		}
		n++
		emit(pos)
	}
}

// limitEmit2 is limitEmit for the two-argument QuerySet callback; the limit
// applies to the total across all queries in the set.
func (l limits) limitEmit2(emit func(query, pos int)) func(query, pos int) {
	if l.maxMatches <= 0 {
		return emit
	}
	n := 0
	max := l.maxMatches
	return func(query, pos int) {
		if n >= max {
			panic(abortRun{errs.MatchesLimit(max, pos)})
		}
		n++
		emit(query, pos)
	}
}

// guardRun executes one run with panic containment and error typing: fn's
// error is converted to the public vocabulary, an abortRun panic becomes
// its carried error, and any other panic — a library bug — is contained as
// an *InternalError instead of crashing the caller.
func guardRun(engine string, fn func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if a, ok := r.(abortRun); ok {
			err = convertErr(a.err)
			return
		}
		ie := &InternalError{Engine: engine, Offset: -1, Cause: fmt.Sprint(r)}
		if fault, ok := r.(*input.Error); ok {
			ie.Offset = fault.Off
		}
		err = ie
	}()
	return convertErr(fn())
}

// convertErr maps the internal failure vocabulary to the public one. It is
// deliberately the single funnel every public entry point returns through.
func convertErr(err error) error {
	if err == nil {
		return nil
	}
	var m *errs.Malformed
	if errors.As(err, &m) {
		return &MalformedError{Offset: m.Offset, Kind: m.Kind, sentinel: m.Sentinel}
	}
	var se *dom.SyntaxError
	if errors.As(err, &se) {
		return &MalformedError{Offset: se.Offset, Kind: se.Msg}
	}
	var l *errs.Limit
	if errors.As(err, &l) {
		return &LimitError{What: l.What, Max: l.Max, Offset: l.Offset}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}
