package rsonpath

// Differential suite for the execution supervisor (DESIGN.md §10): faults
// injected into the primary engine must leave the supervised output
// byte-identical to a clean run of the DOM oracle over the whole compliance
// corpus, with the Outcome recording every fallback. FallbackOff must
// surface the fault instead, deadlines must never trigger the ladder, and a
// watchdog deadline must fire even against a blocking reader.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rsonpath/internal/classifier"
	"rsonpath/internal/faultreader"
	"rsonpath/internal/input"
)

// faultyRunner interposes on a Query's engine: it delegates to the real
// engine but panics — the fault guardRun contains as an *InternalError —
// either immediately (failAt < 0) or as the failAt-th match is emitted. It
// implements both the in-memory and streaming surfaces so every supervised
// entry point can be driven through it.
type faultyRunner struct {
	inner  runner
	failAt int          // <0: panic at entry; n≥0: panic when match n is emitted
	fired  atomic.Int32 // number of times the fault actually fired
}

func (f *faultyRunner) hook(emit func(pos int)) func(pos int) {
	count := 0
	return func(pos int) {
		if count == f.failAt {
			f.fired.Add(1)
			panic("injected engine fault")
		}
		count++
		emit(pos)
	}
}

func (f *faultyRunner) Run(data []byte, emit func(pos int)) error {
	if f.failAt < 0 {
		f.fired.Add(1)
		panic("injected engine fault")
	}
	return f.inner.Run(data, f.hook(emit))
}

func (f *faultyRunner) RunInput(in input.Input, emit func(pos int)) error {
	if f.failAt < 0 {
		f.fired.Add(1)
		panic("injected engine fault")
	}
	return f.inner.(inputRunner).RunInput(in, f.hook(emit))
}

// domOffsets is the clean reference answer for one corpus case.
func domOffsets(t *testing.T, query string, doc []byte) []int {
	t.Helper()
	dq, err := Compile(query, WithEngine(EngineDOM))
	if err != nil {
		t.Fatalf("dom compile %s: %v", query, err)
	}
	offs, err := runOffsets(dq, doc)
	if err != nil {
		t.Fatalf("dom run %s: %v", query, err)
	}
	return offs
}

// TestSupervisorDifferentialFallback drives the whole compliance corpus
// through every streaming engine with an injected fault — at engine entry
// and mid-emission — and requires the supervised output to be identical to
// a clean run of the DOM oracle, with the Outcome recording the fallback.
func TestSupervisorDifferentialFallback(t *testing.T) {
	for _, c := range allFaultCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			doc := []byte(c.doc)
			want := domOffsets(t, c.query, doc)
			for _, kind := range faultEngines {
				q, err := Compile(c.query, WithEngine(kind))
				if err != nil {
					continue // engine does not support this query's fragment
				}
				failAts := []int{-1}
				if n := len(want); n > 0 {
					failAts = append(failAts, n/2)
				}
				for _, failAt := range failAts {
					fr := &faultyRunner{inner: q.run, failAt: failAt}
					q.run = fr
					var got []int
					oc, err := q.RunSupervised(context.Background(), doc, func(pos int) { got = append(got, pos) })
					q.run = fr.inner
					if failAt >= 0 && fr.fired.Load() == 0 {
						// The engine found fewer matches than the oracle
						// (e.g. ski's restricted wildcard): the fault never
						// fired, so there is nothing to supervise here.
						continue
					}
					if err != nil {
						t.Fatalf("[%v failAt=%d] supervised run: %v", kind, failAt, err)
					}
					if !sameOffsets(got, want) {
						t.Fatalf("[%v failAt=%d] offsets %v, dom oracle %v", kind, failAt, got, want)
					}
					if !oc.Degraded() || oc.Engine != "dom" || oc.Attempts != 2 {
						t.Fatalf("[%v failAt=%d] outcome %+v, want degraded dom run in 2 attempts", kind, failAt, oc)
					}
					var ie *InternalError
					if !errors.As(oc.FallbackReason, &ie) {
						t.Fatalf("[%v failAt=%d] fallback reason %v, want *InternalError", kind, failAt, oc.FallbackReason)
					}
				}
			}
		})
	}
}

// TestSupervisorCleanRunOutcome: with no fault the primary answers in one
// attempt and the supervised output equals the direct run's.
func TestSupervisorCleanRunOutcome(t *testing.T) {
	for _, c := range allFaultCases() {
		doc := []byte(c.doc)
		for _, kind := range faultEngines {
			q, err := Compile(c.query, WithEngine(kind))
			if err != nil {
				continue
			}
			want, err := runOffsets(q, doc)
			if err != nil {
				t.Fatalf("[%s/%v] direct run: %v", c.name, kind, err)
			}
			var got []int
			oc, err := q.RunSupervised(context.Background(), doc, func(pos int) { got = append(got, pos) })
			if err != nil {
				t.Fatalf("[%s/%v] supervised run: %v", c.name, kind, err)
			}
			if !sameOffsets(got, want) {
				t.Fatalf("[%s/%v] offsets %v, direct %v", c.name, kind, got, want)
			}
			if oc.Degraded() || oc.Attempts != 1 || oc.Engine != kind.String() {
				t.Fatalf("[%s/%v] outcome %+v, want clean single attempt", c.name, kind, oc)
			}
		}
	}
}

// TestSupervisorFallbackOff: with the ladder disabled the injected fault
// surfaces as an *InternalError and no output is delivered — a failed
// primary attempt must not leak its partial matches.
func TestSupervisorFallbackOff(t *testing.T) {
	doc := []byte(`{"a": 1, "b": {"a": 2}}`)
	q := MustCompile("$..a", WithFallback(FallbackOff))
	q.run = &faultyRunner{inner: q.run, failAt: 1} // fault after one match
	emitted := 0
	oc, err := q.RunSupervised(context.Background(), doc, func(int) { emitted++ })
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err %v, want *InternalError", err)
	}
	if emitted != 0 {
		t.Fatalf("failed attempt leaked %d matches", emitted)
	}
	if oc.Degraded() || oc.Attempts != 1 {
		t.Fatalf("outcome %+v, want undegraded single attempt", oc)
	}
}

// TestSupervisorDeadlineNeverLadders: an expired deadline is the caller's
// verdict, not an engine fault — the oracle must not run.
func TestSupervisorDeadlineNeverLadders(t *testing.T) {
	doc := []byte(`{"a": [` + strings.Repeat(`{"b": 1}, `, 1<<14) + `{"b": 1}]}`)
	q := MustCompile("$..b", WithTimeout(time.Nanosecond))
	emitted := 0
	oc, err := q.RunSupervised(context.Background(), doc, func(int) { emitted++ })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want wrap of ErrCanceled and context.DeadlineExceeded", err)
	}
	if oc.Degraded() {
		t.Fatalf("outcome %+v: deadline expiry triggered the ladder", oc)
	}
	if emitted != 0 {
		t.Fatalf("expired run leaked %d matches", emitted)
	}
}

// TestSupervisorTimeoutAgainstBlockingReader: the watchdog must fire within
// the deadline even while the underlying reader blocks forever.
func TestSupervisorTimeoutAgainstBlockingReader(t *testing.T) {
	const window = 512
	doc := []byte(`{"pad": "` + strings.Repeat("x", 4*window) + `", "a": 1}`)
	unblock := make(chan struct{})
	defer close(unblock)

	q := MustCompile("$.a", WithStreamWindow(window), WithTimeout(50*time.Millisecond))
	done := make(chan error, 1)
	go func() {
		_, err := q.RunReaderSupervised(context.Background(), func() (io.Reader, error) {
			return faultreader.Blocking(doc, window, unblock), nil
		}, func(int) {})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err %v, want wrap of ErrCanceled and context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervised run did not observe its deadline against a blocking reader")
	}
}

// TestRunReaderSupervisedFallback: a mid-stream engine fault re-runs the
// query on the buffered DOM oracle via a fresh reader.
func TestRunReaderSupervisedFallback(t *testing.T) {
	doc := []byte(`{"a": 1, "b": {"a": [2, 3]}}`)
	want := domOffsets(t, "$..a", doc)
	q := MustCompile("$..a")
	q.run = &faultyRunner{inner: q.run, failAt: 1}
	opens := 0
	var got []int
	oc, err := q.RunReaderSupervised(context.Background(), func() (io.Reader, error) {
		opens++
		return bytes.NewReader(doc), nil
	}, func(pos int) { got = append(got, pos) })
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if !sameOffsets(got, want) {
		t.Fatalf("offsets %v, dom oracle %v", got, want)
	}
	if !oc.Degraded() || oc.Engine != "dom" || oc.Attempts != 2 || opens != 2 {
		t.Fatalf("outcome %+v opens %d, want degraded dom run reopening the input", oc, opens)
	}
}

// TestRunReaderSupervisedRetry: a transient reader error satisfying the
// caller's predicate is retried with a fresh reader; the retry succeeds and
// the outcome reports both attempts without degradation.
func TestRunReaderSupervisedRetry(t *testing.T) {
	doc := []byte(`{"a": 1, "b": {"a": 2}}`)
	q := MustCompile("$..a", WithRetry(2, time.Millisecond, func(err error) bool {
		return errors.Is(err, faultreader.ErrInjected)
	}))
	opens := 0
	var got []int
	oc, err := q.RunReaderSupervised(context.Background(), func() (io.Reader, error) {
		opens++
		if opens == 1 {
			return faultreader.ErrorAfter(doc, len(doc)/2), nil
		}
		return bytes.NewReader(doc), nil
	}, func(pos int) { got = append(got, pos) })
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("offsets %v, want 2 matches", got)
	}
	if oc.Degraded() || oc.Attempts != 2 || oc.Engine != "rsonpath" || opens != 2 {
		t.Fatalf("outcome %+v opens %d, want clean second attempt", oc, opens)
	}
}

// TestRunReaderSupervisedRetryBudget: a persistent reader error exhausts
// the retry budget and surfaces; the error is not degradable, so the ladder
// stays cold.
func TestRunReaderSupervisedRetryBudget(t *testing.T) {
	doc := []byte(`{"a": 1}`)
	q := MustCompile("$.a", WithRetry(2, time.Millisecond, func(err error) bool {
		return errors.Is(err, faultreader.ErrInjected)
	}))
	opens := 0
	oc, err := q.RunReaderSupervised(context.Background(), func() (io.Reader, error) {
		opens++
		return faultreader.ErrorAfter(doc, 2), nil
	}, func(int) {})
	if !errors.Is(err, faultreader.ErrInjected) {
		t.Fatalf("err %v, want the injected reader error", err)
	}
	if oc.Degraded() || oc.Attempts != 3 || opens != 3 {
		t.Fatalf("outcome %+v opens %d, want 3 undegraded attempts", oc, opens)
	}
}

// faultySet interposes on a QuerySet's one-pass driver the way faultyRunner
// does on a Query's engine.
type faultySet struct {
	inner  setRunner
	failAt int
	fired  int
}

func (f *faultySet) Len() int { return f.inner.Len() }

func (f *faultySet) hook(emit func(query, pos int)) func(query, pos int) {
	count := 0
	return func(query, pos int) {
		if count == f.failAt {
			f.fired++
			panic("injected set fault")
		}
		count++
		emit(query, pos)
	}
}

func (f *faultySet) Run(data []byte, emit func(query, pos int)) error {
	if f.failAt < 0 {
		f.fired++
		panic("injected set fault")
	}
	return f.inner.Run(data, f.hook(emit))
}

func (f *faultySet) RunInput(in input.Input, emit func(query, pos int)) error {
	if f.failAt < 0 {
		f.fired++
		panic("injected set fault")
	}
	return f.inner.RunInput(in, f.hook(emit))
}

func (f *faultySet) RunPlanes(in input.Input, planes *classifier.Planes, emit func(query, pos int)) error {
	if f.failAt < 0 {
		f.fired++
		panic("injected set fault")
	}
	return f.inner.RunPlanes(in, planes, f.hook(emit))
}

// TestQuerySetSupervisedFallback: a fault in the shared one-pass driver
// degrades to per-query DOM runs whose union arrives in the shared pass's
// order — (offset, query index) — and matches the clean set run.
func TestQuerySetSupervisedFallback(t *testing.T) {
	doc := []byte(`{"a": 1, "b": {"a": 2, "b": {"a": 3}}, "c": [{"b": 4}]}`)
	queries := []string{"$..a", "$..b"}
	clean := MustCompileSet(queries)
	type match struct{ q, pos int }
	var want []match
	if err := clean.Run(doc, func(q, pos int) { want = append(want, match{q, pos}) }); err != nil {
		t.Fatalf("clean set run: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("bad fixture: clean set run found nothing")
	}
	for _, failAt := range []int{-1, len(want) / 2} {
		set := MustCompileSet(queries)
		set.set = &faultySet{inner: set.set, failAt: failAt}
		var got []match
		oc, err := set.RunSupervised(context.Background(), doc, func(q, pos int) { got = append(got, match{q, pos}) })
		if err != nil {
			t.Fatalf("[failAt=%d] supervised set run: %v", failAt, err)
		}
		if len(got) != len(want) {
			t.Fatalf("[failAt=%d] %d matches, want %d", failAt, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[failAt=%d] match %d = %+v, want %+v", failAt, i, got[i], want[i])
			}
		}
		if !oc.Degraded() || oc.Engine != "dom" || oc.Attempts != 2 {
			t.Fatalf("[failAt=%d] outcome %+v, want degraded dom run", failAt, oc)
		}
	}
}

// TestQuerySetSupervisedFallbackOff mirrors the single-query contract.
func TestQuerySetSupervisedFallbackOff(t *testing.T) {
	set := MustCompileSet([]string{"$..a"}, WithFallback(FallbackOff))
	set.set = &faultySet{inner: set.set, failAt: -1}
	emitted := 0
	oc, err := set.RunSupervised(context.Background(), []byte(`{"a": 1}`), func(int, int) { emitted++ })
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err %v, want *InternalError", err)
	}
	if emitted != 0 || oc.Degraded() {
		t.Fatalf("emitted %d, outcome %+v; want contained failure with no output", emitted, oc)
	}
}

// TestSupervisedMalformedNotLaddered: malformed input is the input's
// verdict; the oracle must not be consulted and the error class must be
// preserved.
func TestSupervisedMalformedNotLaddered(t *testing.T) {
	q := MustCompile("$.a")
	oc, err := q.RunSupervised(context.Background(), []byte(`{"a": `), func(int) {})
	var me *MalformedError
	if !errors.As(err, &me) {
		t.Fatalf("err %v, want *MalformedError", err)
	}
	if oc.Degraded() || oc.Attempts != 1 {
		t.Fatalf("outcome %+v: malformed input reached the ladder", oc)
	}
}

// FuzzSupervisorFallback fuzzes the document and the injection point:
// whenever the injected fault fires, the supervised run must settle on the
// DOM oracle's clean answer (same offsets, same error class) — the
// differential property at the heart of the degradation ladder.
func FuzzSupervisorFallback(f *testing.F) {
	for i, c := range allFaultCases() {
		if i%7 == 0 {
			f.Add([]byte(c.doc), 0)
			f.Add([]byte(c.doc), 2)
		}
	}
	f.Add([]byte(`{"a": [1, {"a": 2}]}`), -1)
	const query = "$..a"
	f.Fuzz(func(t *testing.T, doc []byte, failAt int) {
		if len(doc) > 1<<16 {
			return
		}
		dq := MustCompile(query, WithEngine(EngineDOM))
		wantOffs, wantErr := runOffsets(dq, doc)

		q := MustCompile(query)
		fr := &faultyRunner{inner: q.run, failAt: failAt}
		q.run = fr
		var got []int
		oc, err := q.RunSupervised(context.Background(), doc, func(pos int) { got = append(got, pos) })

		if !oc.Degraded() {
			return // fault never fired, or the input failed before it could
		}
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("supervised err %v, dom err %v", err, wantErr)
		}
		if err == nil && !sameOffsets(got, wantOffs) {
			t.Fatalf("offsets %v, dom oracle %v", got, wantOffs)
		}
		if err != nil {
			var me *MalformedError
			var le *LimitError
			wantMe, wantLe := errors.As(wantErr, &me), errors.As(wantErr, &le)
			gotMe, gotLe := errors.As(err, &me), errors.As(err, &le)
			if wantMe != gotMe || wantLe != gotLe {
				t.Fatalf("error class mismatch: supervised %v, dom %v", err, wantErr)
			}
		}
	})
}
