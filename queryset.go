package rsonpath

import (
	"context"
	"errors"
	"fmt"

	"rsonpath/internal/automaton"
	"rsonpath/internal/classifier"
	"rsonpath/internal/input"
	"rsonpath/internal/jsonpath"
	"rsonpath/internal/multiquery"
	"rsonpath/internal/planner"
)

// setRunner is the execution surface QuerySet needs from the one-pass
// driver; an interface so the fault-injection tests can interpose on it the
// way they do on Query.run.
type setRunner interface {
	Run(data []byte, emit func(query, pos int)) error
	RunInput(in input.Input, emit func(query, pos int)) error
	RunPlanes(in input.Input, planes *classifier.Planes, emit func(query, pos int)) error
	Len() int
}

// errSetEngine rejects QuerySet on engines other than the default: the
// one-pass driver is built on the accelerated engine's classification
// stream. Evaluate per-query with Compile for the baseline engines.
var errSetEngine = errors.New("rsonpath: QuerySet requires EngineRsonpath")

// QuerySet is a set of compiled JSONPath queries evaluated together in a
// single pass over each document: the quote/structural/depth classification
// stream — the dominant cost of a run — is computed once and shared by all
// queries, each of which keeps its own automaton state. For a service
// running many queries over the same document this replaces N classification
// passes with one; see DESIGN.md for the shared-skipping design and for when
// a loop of Query.Run is preferable.
//
// A QuerySet is immutable and safe for concurrent use.
type QuerySet struct {
	sources []string
	// parsed keeps the member queries' ASTs for the supervisor's per-query
	// DOM-oracle fallback (supervisor.go).
	parsed []*jsonpath.Query
	set    setRunner
	window int // RunReader window size; 0 = DefaultStreamWindow
	limits limits
	sup    supervision

	// Plan layer: the planner mode and the union shape of the member
	// queries. The shared one-pass driver is always the accelerated engine,
	// so the set's planning decisions are the scan-vs-planes choice and the
	// reported scan flavor, not an engine choice.
	mode  PlannerMode
	shape planner.Shape
}

// CompileSet parses and compiles a set of JSONPath expressions for one-pass
// evaluation. The only supported engine is EngineRsonpath (the default);
// path semantics is not supported. An empty set is valid and matches
// nothing.
func CompileSet(queries []string, opts ...Option) (*QuerySet, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.kind != EngineRsonpath {
		return nil, errSetEngine
	}
	if c.semantics == PathSemantics {
		return nil, errPathSemantics
	}
	sources := append([]string(nil), queries...)
	dfas := make([]*automaton.DFA, len(queries))
	parsedAll := make([]*jsonpath.Query, len(queries))
	for i, src := range queries {
		parsed, err := jsonpath.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("query %d (%s): %w", i, src, err)
		}
		parsedAll[i] = parsed
		dfas[i], err = automaton.Compile(parsed, automaton.Options{})
		if err != nil {
			return nil, fmt.Errorf("query %d (%s): %w", i, src, err)
		}
	}
	lim := c.resolveLimits()
	set := multiquery.New(dfas)
	set.Limits(lim.maxDepth, lim.maxDocBytes)
	return &QuerySet{sources: sources, parsed: parsedAll, set: set, window: c.window,
		limits: lim, sup: c.resolveSupervision(),
		mode: c.planner, shape: setShape(parsedAll)}, nil
}

// setShape is the union shape of the member queries: the shared pass can
// head-skip only when every member starts with a descendant label, and a
// mixed set plans like its most general member.
func setShape(parsedAll []*jsonpath.Query) planner.Shape {
	sh := planner.Shape{LeadingDescendantLabel: len(parsedAll) > 0}
	for _, parsed := range parsedAll {
		m := shapeOf(parsed)
		sh.Selectors += m.Selectors
		sh.HasDescendant = sh.HasDescendant || m.HasDescendant
		sh.HasWildcard = sh.HasWildcard || m.HasWildcard
		sh.LeadingDescendantLabel = sh.LeadingDescendantLabel && m.LeadingDescendantLabel
	}
	// DescendantChainOnly stays false: the shared driver has no
	// depth-register alternate, so the set never plans stackless.
	return sh
}

// plan runs the decision rules for the set over the given stats. The set's
// engine is structurally pinned to the accelerated one-pass driver, so only
// the planner mode, the watchdog, and the document stats bind.
func (s *QuerySet) plan(stats planner.DocStats) planner.Plan {
	return planner.Decide(s.shape, stats, planner.Constraints{
		PlannerOff:     s.mode == PlannerOff,
		ForcedStrategy: strategyForKind(EngineRsonpath, s.shape),
		WatchdogArmed:  s.sup.timeout > 0,
	})
}

// Explain returns the execution plan the set would follow for a run over a
// document with the given stats; see Query.Explain. The engine is always
// EngineRsonpath — the shared one-pass driver — so the plan varies only in
// the scan-vs-planes choice and the reported scan flavor.
func (s *QuerySet) Explain(stats DocStats) Plan {
	p := publicPlan(s.plan(stats.internal()))
	p.Engine = EngineRsonpath
	return p
}

// MustCompileSet is CompileSet that panics on error, for fixed query sets.
func MustCompileSet(queries []string, opts ...Option) *QuerySet {
	s, err := CompileSet(queries, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of queries in the set.
func (s *QuerySet) Len() int { return s.set.Len() }

// Source returns the text of query i as passed to CompileSet.
func (s *QuerySet) Source(i int) string { return s.sources[i] }

// Run scans the document once, calling emit with the query index and the
// byte offset of the first character of every matched value. Matches arrive
// in document order; matches of different queries at the same offset arrive
// in query order. Empty and whitespace-only documents yield zero matches
// and a nil error.
//
// Malformed input surfaces as *MalformedError, a configured limit being hit
// as *LimitError, and an internal fault as *InternalError (never a panic).
func (s *QuerySet) Run(data []byte, emit func(query, pos int)) error {
	if s.sup.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), s.sup.timeout)
		defer cancel()
		return s.runCtx(ctx, data, emit)
	}
	if err := s.limits.checkDocBytes(len(data)); err != nil {
		return err
	}
	return guardRun("queryset", func() error {
		return s.set.Run(data, s.limits.limitEmit2(emit))
	})
}

// Counts returns the number of matches of each query, indexed like the
// queries passed to CompileSet.
func (s *QuerySet) Counts(data []byte) ([]int, error) {
	counts := make([]int, s.set.Len())
	err := s.Run(data, func(q, _ int) { counts[q]++ })
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// MatchOffsets returns the byte offsets of every query's matched values,
// indexed like the queries passed to CompileSet.
func (s *QuerySet) MatchOffsets(data []byte) ([][]int, error) {
	out := make([][]int, s.set.Len())
	err := s.Run(data, func(q, pos int) { out[q] = append(out[q], pos) })
	if err != nil {
		return nil, err
	}
	return out, nil
}
