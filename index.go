package rsonpath

import (
	"context"

	"rsonpath/internal/classifier"
	"rsonpath/internal/engine"
	"rsonpath/internal/input"
	"rsonpath/internal/planner"
	"rsonpath/internal/supervisor"
)

// IndexedDocument is a document classified once and queried many times: the
// whole-document mask planes (quote, in-string, structural, and bracket
// masks, one 64-bit word per 64-byte block) built by one batched SWAR sweep,
// plus the padded tail block. RunIndexed evaluations serve every per-block
// mask from the index instead of re-running classification — the dominant
// cost of a run — so the per-query cost drops to automaton simulation and
// the few scalar verifications.
//
// An IndexedDocument is immutable and safe for concurrent use; any number of
// RunIndexed calls may share it, from any number of goroutines. It aliases
// the data slice it was built from: the caller must not mutate those bytes
// while the index is in use (mutating them invalidates the index — the
// planes would no longer describe the bytes, and runs over the stale index
// return arbitrary offsets). There is no partial invalidation; to query
// changed bytes, build a new index.
//
// The index costs 6 words per 64 input bytes (~9.4% of the document size).
type IndexedDocument struct {
	data   []byte
	in     *input.BytesInput
	planes *classifier.Planes
}

// Index classifies data once with the batched SWAR kernels and returns the
// reusable mask index. Two whole-document screens run on the fresh planes
// and reject input that cannot be well-formed JSON — a document ending
// inside a string, or one whose brackets (outside strings) do not balance —
// as *MalformedError before any query runs. The screens are necessary, not
// sufficient: input that passes can still fail a later RunIndexed with the
// engine's own malformed-input detection.
//
// The returned index aliases data; see IndexedDocument for the lifetime
// contract.
func Index(data []byte) (*IndexedDocument, error) {
	planes := classifier.BuildPlanes(data)
	if planes.EndInString {
		return nil, &MalformedError{Offset: len(data), Kind: "unterminated string"}
	}
	if opens, closes := planes.BracketBalance(); opens != closes {
		return nil, &MalformedError{Offset: len(data), Kind: "unbalanced brackets"}
	}
	return &IndexedDocument{data: data, in: input.NewBytes(data), planes: planes}, nil
}

// Bytes returns the document bytes the index was built from (aliased, not
// copied).
func (d *IndexedDocument) Bytes() []byte { return d.data }

// Len returns the document length in bytes.
func (d *IndexedDocument) Len() int { return len(d.data) }

// Footprint returns the resident memory cost of the index in bytes: the
// document it aliases plus the six mask planes (one 64-bit word each per
// 64-byte block, ~9.4% of the document). Cache layers that budget by bytes
// (rsonpathd's document cache) charge entries by this number.
func (d *IndexedDocument) Footprint() int {
	return len(d.data) + 6*8*d.planes.Blocks()
}

// RunIndexed is Run over a pre-indexed document: matches are identical to
// Run(doc.Bytes(), emit) on well-formed input, but the classification work
// is served from the index. The speedup accrues to EngineRsonpath (the
// default); the baseline engines have no classification stream to feed, so
// for them RunIndexed falls back to a plain Run over the document bytes.
// A query compiled WithTimeout takes the same fallback — the watchdog's
// cancellation points live on the streaming path, which cannot consume
// planes.
//
// On malformed input that slipped past Index's screens the run's
// best-effort error positions may differ from Run's; see DESIGN.md §11.
func (q *Query) RunIndexed(doc *IndexedDocument, emit func(pos int)) error {
	e, ok := q.run.(*engine.Engine)
	pl := q.plan(planner.DocStats{Bytes: len(doc.data), Indexed: ok})
	if !ok || pl.Strategy != planner.StrategyIndexed {
		// The plan diverted to a scan: no plane surface (baseline engine), or
		// the watchdog needs the streaming path's cancellation points.
		return q.Run(doc.data, emit)
	}
	if err := q.limits.checkDocBytes(len(doc.data)); err != nil {
		return err
	}
	return guardRun(q.kind.String(), func() error {
		return e.RunPlanes(doc.in, doc.planes, q.limits.limitEmit(emit))
	})
}

// RunIndexedSupervised is RunIndexed under the execution supervisor: the
// plane-backed run observes ctx at entry (a plane run is atomic — like
// EngineDOM, it cannot be interrupted mid-document), and an internal fault
// degrades to the DOM oracle over the indexed bytes. Matches are delivered
// only once the run settles; the Outcome reports which path produced them.
// This is the serving path for a hot document cache: the index keeps the
// classification amortized while degradation stays observable per request.
func (q *Query) RunIndexedSupervised(ctx context.Context, doc *IndexedDocument, emit func(pos int)) (Outcome, error) {
	e, ok := q.run.(*engine.Engine)
	if !ok {
		// No plane surface to serve from; the supervised in-memory run is the
		// same evaluation the unsupervised fallback in RunIndexed would do.
		return q.RunSupervised(ctx, doc.data, emit)
	}
	var buf []int
	primary := supervisor.Attempt{Engine: q.kind.String(), Run: func(actx context.Context) error {
		buf = buf[:0]
		if err := actx.Err(); err != nil {
			return convertErr(err)
		}
		if err := q.limits.checkDocBytes(len(doc.data)); err != nil {
			return err
		}
		return guardRun(q.kind.String(), func() error {
			return e.RunPlanes(doc.in, doc.planes, q.limits.limitEmit(func(pos int) { buf = append(buf, pos) }))
		})
	}}
	so, err := supervisor.Run(ctx, q.sup.policy(false), primary, q.oracleAttempt(doc.data, &buf))
	oc := Outcome(so)
	if err != nil && degradable(err) {
		buf = nil
	}
	derr := deliverOffsets(oc.Engine, buf, emit)
	if err == nil {
		err = derr
	}
	return oc, err
}

// CountIndexed returns the number of matches in the indexed document.
func (q *Query) CountIndexed(doc *IndexedDocument) (int, error) {
	n := 0
	err := q.RunIndexed(doc, func(int) { n++ })
	return n, err
}

// MatchOffsetsIndexed returns the byte offsets of all matched values in the
// indexed document.
func (q *Query) MatchOffsetsIndexed(doc *IndexedDocument) ([]int, error) {
	var out []int
	err := q.RunIndexed(doc, func(pos int) { out = append(out, pos) })
	return out, err
}

// RunIndexed is QuerySet.Run over a pre-indexed document: the set's one
// shared classification pass is served from the index, with the same match
// order and error contract as Run on well-formed input. A set compiled
// WithTimeout falls back to a plain Run (see Query.RunIndexed).
func (s *QuerySet) RunIndexed(doc *IndexedDocument, emit func(query, pos int)) error {
	if pl := s.plan(planner.DocStats{Bytes: len(doc.data), Indexed: true}); pl.Strategy != planner.StrategyIndexed {
		// The watchdog needs the streaming path's cancellation points; the
		// atomic plane-backed run is unavailable.
		return s.Run(doc.data, emit)
	}
	if err := s.limits.checkDocBytes(len(doc.data)); err != nil {
		return err
	}
	return guardRun("queryset", func() error {
		return s.set.RunPlanes(doc.in, doc.planes, s.limits.limitEmit2(emit))
	})
}

// CountsIndexed returns the number of matches of each query in the indexed
// document, indexed like the queries passed to CompileSet.
func (s *QuerySet) CountsIndexed(doc *IndexedDocument) ([]int, error) {
	counts := make([]int, s.set.Len())
	err := s.RunIndexed(doc, func(q, _ int) { counts[q]++ })
	if err != nil {
		return nil, err
	}
	return counts, nil
}
