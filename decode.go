package rsonpath

import (
	"fmt"
	"unicode/utf16"
	"unicode/utf8"
)

// DecodeString decodes a JSON string value as returned by MatchValues or
// ValueAt — including the surrounding quotes — into its unescaped text.
// All escape forms of RFC 8259 are handled, including \uXXXX surrogate
// pairs. Inputs that are not JSON string values are rejected.
func DecodeString(raw []byte) (string, error) {
	if len(raw) < 2 || raw[0] != '"' || raw[len(raw)-1] != '"' {
		return "", fmt.Errorf("rsonpath: not a JSON string: %q", raw)
	}
	body := raw[1 : len(raw)-1]
	// Fast path: no escapes.
	hasEscape := false
	for _, b := range body {
		if b == '\\' {
			hasEscape = true
			break
		}
	}
	if !hasEscape {
		return string(body), nil
	}
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(body) {
			return "", fmt.Errorf("rsonpath: truncated escape in %q", raw)
		}
		switch e := body[i+1]; e {
		case '"', '\\', '/':
			out = append(out, e)
			i += 2
		case 'b':
			out = append(out, '\b')
			i += 2
		case 'f':
			out = append(out, '\f')
			i += 2
		case 'n':
			out = append(out, '\n')
			i += 2
		case 'r':
			out = append(out, '\r')
			i += 2
		case 't':
			out = append(out, '\t')
			i += 2
		case 'u':
			r, n, err := decodeUnicodeEscape(body[i:])
			if err != nil {
				return "", err
			}
			var buf [utf8.UTFMax]byte
			out = append(out, buf[:utf8.EncodeRune(buf[:], r)]...)
			i += n
		default:
			return "", fmt.Errorf("rsonpath: invalid escape \\%c in %q", e, raw)
		}
	}
	return string(out), nil
}

// decodeUnicodeEscape decodes \uXXXX (and a following low surrogate when
// needed) at the start of b, returning the rune and bytes consumed.
func decodeUnicodeEscape(b []byte) (rune, int, error) {
	r1, err := hex4(b, 2)
	if err != nil {
		return 0, 0, err
	}
	if !utf16.IsSurrogate(r1) {
		return r1, 6, nil
	}
	// High surrogate: a \uXXXX low surrogate must follow.
	if len(b) >= 12 && b[6] == '\\' && b[7] == 'u' {
		r2, err := hex4(b, 8)
		if err == nil {
			if r := utf16.DecodeRune(r1, r2); r != utf8.RuneError {
				return r, 12, nil
			}
		}
	}
	// Unpaired surrogate: substitute the replacement character, as
	// encoding/json does.
	return utf8.RuneError, 6, nil
}

func hex4(b []byte, at int) (rune, error) {
	if len(b) < at+4 {
		return 0, fmt.Errorf("rsonpath: truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := b[at+i]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, fmt.Errorf("rsonpath: invalid \\u escape")
		}
	}
	return r, nil
}
