package rsonpath

// Differential fault-injection suite: every compliance document is driven
// through every engine under hostile readers (one-byte reads, block-torn
// reads, mid-stream errors), truncation at every offset, and resource
// limits. The tiered contract:
//
//   - content-preserving reader faults must yield matches identical to the
//     in-memory run of the same engine;
//   - an injected read error must surface (errors.Is) at the API boundary;
//   - truncation must never panic, never hang, and never report a match the
//     full document does not have — a typed error or a clean subset, only.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"rsonpath/internal/faultreader"
	"rsonpath/internal/input"
)

// faultEngines are the engines with a streaming surface (everything but the
// DOM oracle, which needs the whole document in memory).
var faultEngines = []EngineKind{EngineRsonpath, EngineSurfer, EngineSki, EngineStackless}

// allFaultCases is the full compliance corpus, both tables.
func allFaultCases() []complianceCase {
	cases := make([]complianceCase, 0, len(complianceCases)+len(sliceComplianceCases))
	cases = append(cases, complianceCases...)
	cases = append(cases, sliceComplianceCases...)
	return cases
}

// runOffsets collects the match offsets of one in-memory run.
func runOffsets(q *Query, doc []byte) ([]int, error) {
	var offs []int
	err := q.Run(doc, func(pos int) { offs = append(offs, pos) })
	return offs, err
}

func sameOffsets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetOffsets reports whether every offset in got also occurs in want.
func subsetOffsets(got, want []int) bool {
	set := make(map[int]bool, len(want))
	for _, o := range want {
		set[o] = true
	}
	for _, o := range got {
		if !set[o] {
			return false
		}
	}
	return true
}

// typedFailure reports whether err belongs to the public failure
// vocabulary: malformed input, a tripped limit, or a window violation (the
// pre-existing *input.Error contract for features wider than the window).
func typedFailure(err error) bool {
	var me *MalformedError
	var le *LimitError
	var ie *input.Error
	return errors.As(err, &me) || errors.As(err, &le) || errors.As(err, &ie)
}

// TestFaultContentPreservingReaders runs the whole corpus through readers
// that deliver the exact document bytes but tear every read — one byte at a
// time, at every block boundary, and at a single mid-document point. The
// matches must be identical to the in-memory run of the same engine.
func TestFaultContentPreservingReaders(t *testing.T) {
	for _, c := range allFaultCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			doc := []byte(c.doc)
			for _, kind := range faultEngines {
				q, err := Compile(c.query, WithEngine(kind))
				if err != nil {
					continue // engine does not support this query's fragment
				}
				want, err := runOffsets(q, doc)
				if err != nil {
					t.Fatalf("[%v] in-memory run: %v", kind, err)
				}
				readers := map[string]func() io.Reader{
					"one-byte":   func() io.Reader { return faultreader.OneByte(doc) },
					"block-torn": func() io.Reader { return faultreader.Chunked(doc, 64) },
					"torn-mid":   func() io.Reader { return faultreader.TornAt(doc, len(doc)/2) },
				}
				for name, mk := range readers {
					var got []int
					err := q.RunReader(mk(), func(pos int) { got = append(got, pos) })
					if err != nil {
						t.Fatalf("[%v/%s] streaming run: %v", kind, name, err)
					}
					if !sameOffsets(got, want) {
						t.Fatalf("[%v/%s] offsets %v, in-memory %v", kind, name, got, want)
					}
				}
			}
		})
	}
}

// TestFaultInjectedReadError verifies that a reader failing mid-stream
// surfaces its error (unmangled, matchable with errors.Is) and that any
// matches delivered before the failure are matches of the full document.
func TestFaultInjectedReadError(t *testing.T) {
	for _, c := range allFaultCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			doc := []byte(c.doc)
			for _, kind := range faultEngines {
				q, err := Compile(c.query, WithEngine(kind))
				if err != nil {
					continue
				}
				want, err := runOffsets(q, doc)
				if err != nil {
					t.Fatalf("[%v] in-memory run: %v", kind, err)
				}
				for _, n := range []int{0, len(doc) / 2} {
					var got []int
					err := q.RunReader(faultreader.ErrorAfter(doc, n), func(pos int) { got = append(got, pos) })
					if err == nil {
						t.Fatalf("[%v] ErrorAfter(%d): run succeeded", kind, n)
					}
					if !errors.Is(err, faultreader.ErrInjected) {
						t.Fatalf("[%v] ErrorAfter(%d): error %v does not wrap the injected error", kind, n, err)
					}
					if !subsetOffsets(got, want) {
						t.Fatalf("[%v] ErrorAfter(%d): offsets %v not a subset of %v", kind, n, got, want)
					}
				}
			}
		})
	}
}

// TestFaultTruncationSweep truncates every compliance document at every
// offset and runs the result through every engine, in memory and streamed.
// A truncated document must never panic, never produce an untyped error,
// and never report a match the full document does not have. (Detection is
// best-effort on the skipping engines — a truncation may go unnoticed when
// the tail happens to look complete — but over-reporting is never allowed;
// see DESIGN.md §9.)
func TestFaultTruncationSweep(t *testing.T) {
	engines := append([]EngineKind{EngineDOM}, faultEngines...)
	for _, c := range allFaultCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			doc := []byte(c.doc)
			for _, kind := range engines {
				q, err := Compile(c.query, WithEngine(kind))
				if err != nil {
					continue
				}
				want, err := runOffsets(q, doc)
				if err != nil {
					t.Fatalf("[%v] full-document run: %v", kind, err)
				}
				for cut := 0; cut < len(doc); cut++ {
					trunc := doc[:cut]

					got, err := runOffsets(q, trunc)
					checkTruncated(t, kind, "in-memory", cut, got, want, err)
					if kind == EngineDOM {
						if err != nil {
							var me *MalformedError
							if !errors.As(err, &me) {
								t.Fatalf("[dom] cut %d: error %v, want *MalformedError (exact detection)", cut, err)
							}
						}
						continue // no streaming surface
					}

					var soffs []int
					serr := q.RunReader(bytes.NewReader(trunc), func(pos int) { soffs = append(soffs, pos) })
					checkTruncated(t, kind, "streaming", cut, soffs, want, serr)
				}
			}
		})
	}
}

func checkTruncated(t *testing.T, kind EngineKind, mode string, cut int, got, want []int, err error) {
	t.Helper()
	if err != nil {
		var ie *InternalError
		if errors.As(err, &ie) {
			t.Fatalf("[%v/%s] cut %d: internal fault %v (contained panic)", kind, mode, cut, err)
		}
		if !typedFailure(err) {
			t.Fatalf("[%v/%s] cut %d: untyped error %v", kind, mode, cut, err)
		}
	}
	if !subsetOffsets(got, want) {
		t.Fatalf("[%v/%s] cut %d: offsets %v not a subset of full-document %v", kind, mode, cut, got, want)
	}
}

// TestFaultTruncationWindowBoundaries is the streaming sweep at
// window-boundary-adjacent offsets: a document spanning several refill
// windows, truncated exactly at, just before, and just after each window
// edge, so the truncation lands in every refill-relative position.
func TestFaultTruncationWindowBoundaries(t *testing.T) {
	const window = 512
	var b strings.Builder
	b.WriteString(`{"pad": [`)
	for i := 0; b.Len() < 4*window; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `{"k": %d}`, i)
	}
	b.WriteString(`], "k": -1}`)
	doc := []byte(b.String())

	cuts := []int{0, 1, 63, 64, 65}
	for w := window; w < len(doc); w += window {
		cuts = append(cuts, w-1, w, w+1)
	}
	cuts = append(cuts, len(doc)-1)

	for _, kind := range faultEngines {
		q, err := Compile("$..k", WithEngine(kind), WithStreamWindow(window))
		if err != nil {
			continue
		}
		want, err := runOffsets(q, doc)
		if err != nil {
			t.Fatalf("[%v] full run: %v", kind, err)
		}
		if len(want) == 0 {
			t.Fatalf("[%v] full run found no matches; bad fixture", kind)
		}
		// The untruncated document must stream cleanly at this window first.
		var full []int
		if err := q.RunReader(bytes.NewReader(doc), func(pos int) { full = append(full, pos) }); err != nil {
			t.Fatalf("[%v] streaming full run: %v", kind, err)
		}
		if !sameOffsets(full, want) {
			t.Fatalf("[%v] streaming offsets %v, in-memory %v", kind, full, want)
		}
		for _, cut := range cuts {
			var got []int
			err := q.RunReader(bytes.NewReader(doc[:cut]), func(pos int) { got = append(got, pos) })
			checkTruncated(t, kind, "window-sweep", cut, got, want, err)
		}
	}
}

// TestFaultDeepNesting feeds a megabyte of '[' — the classic stack-blowing
// input — to every stack-bearing engine. With default options the depth
// limit must trip as a typed *LimitError long before any stack is at risk.
func TestFaultDeepNesting(t *testing.T) {
	doc := bytes.Repeat([]byte("["), 1<<20)
	// Each query is chosen to drive its engine's stack-bearing loop: a
	// descendant index makes the paper's engine descend every level (a
	// label query would head-skip, which is depth-agnostic O(1) by design);
	// EngineStackless only accepts descendant label chains but tracks depth
	// for its closer-kind map.
	queries := map[EngineKind]string{
		EngineRsonpath:  "$..[0]",
		EngineSurfer:    "$.a",
		EngineDOM:       "$.a",
		EngineStackless: "$..a",
	}
	for _, kind := range []EngineKind{EngineRsonpath, EngineSurfer, EngineDOM, EngineStackless} {
		q, err := Compile(queries[kind], WithEngine(kind))
		if err != nil {
			t.Fatalf("[%v] compile: %v", kind, err)
		}
		_, err = runOffsets(q, doc)
		if err == nil {
			t.Fatalf("[%v] accepted a megabyte of '['", kind)
		}
		if !errors.Is(err, ErrLimitExceeded) {
			t.Fatalf("[%v] error %v, want depth *LimitError", kind, err)
		}
		var le *LimitError
		if !errors.As(err, &le) || le.What != "depth" || le.Max != DefaultMaxDepth {
			t.Fatalf("[%v] error %v, want depth limit %d", kind, err, DefaultMaxDepth)
		}
		if kind == EngineDOM {
			continue
		}
		// Same contract on the streaming surface.
		err = q.RunReader(bytes.NewReader(doc), func(int) {})
		if !errors.Is(err, ErrLimitExceeded) {
			t.Fatalf("[%v] streaming error %v, want depth *LimitError", kind, err)
		}
	}

	// The head-skip path of the paper's engine is depth-agnostic by design
	// (O(1) memory, nothing to protect): it must still reject the document
	// with a typed error, not crash or accept it.
	hs := MustCompile("$..a", WithEngine(EngineRsonpath))
	if _, err := runOffsets(hs, doc); err == nil {
		t.Fatal("[rsonpath head-skip] accepted a megabyte of '['")
	} else if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("[rsonpath head-skip] untyped error %v", err)
	}

	// EngineSki is exempt by design: its memory is bounded by the query, not
	// the document. It must still return (a typed error for the unterminated
	// document), not crash.
	q := MustCompile("$.a", WithEngine(EngineSki))
	if _, err := runOffsets(q, doc); err == nil {
		t.Fatal("[ski] accepted a megabyte of '['")
	} else if errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("[ski] hit a depth limit it is exempt from: %v", err)
	}
}

func TestWithMaxDepth(t *testing.T) {
	doc := []byte(`{"a": {"b": {"c": {"d": 1}}}}`)
	for _, kind := range []EngineKind{EngineRsonpath, EngineSurfer, EngineDOM} {
		q, err := Compile("$.a.b.c.d", WithEngine(kind), WithMaxDepth(3))
		if err != nil {
			t.Fatalf("[%v] compile: %v", kind, err)
		}
		if _, err := runOffsets(q, doc); !errors.Is(err, ErrLimitExceeded) {
			t.Fatalf("[%v] depth 4 under limit 3: err %v", kind, err)
		}
		deep, err := Compile("$.a.b.c.d", WithEngine(kind), WithMaxDepth(8))
		if err != nil {
			t.Fatalf("[%v] compile: %v", kind, err)
		}
		offs, err := runOffsets(deep, doc)
		if err != nil || len(offs) != 1 {
			t.Fatalf("[%v] depth 4 under limit 8: offs %v err %v", kind, offs, err)
		}
	}
}

func TestWithMaxMatches(t *testing.T) {
	doc := []byte(`[10, 20, 30, 40, 50]`)
	q := MustCompile("$[*]", WithMaxMatches(3))
	var offs []int
	err := q.Run(doc, func(pos int) { offs = append(offs, pos) })
	if !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("err %v, want *LimitError", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.What != "matches" || le.Max != 3 {
		t.Fatalf("err %v, want matches limit 3", err)
	}
	if len(offs) != 3 {
		t.Fatalf("delivered %d matches before the abort, want exactly 3", len(offs))
	}
	// Under the limit: untouched.
	under := MustCompile("$[*]", WithMaxMatches(5))
	offs = offs[:0]
	if err := under.Run(doc, func(pos int) { offs = append(offs, pos) }); err != nil || len(offs) != 5 {
		t.Fatalf("exactly-at-limit run: offs %v err %v", offs, err)
	}
	// Streaming surface.
	offs = offs[:0]
	err = q.RunReader(bytes.NewReader(doc), func(pos int) { offs = append(offs, pos) })
	if !errors.Is(err, ErrLimitExceeded) || len(offs) != 3 {
		t.Fatalf("streaming: offs %v err %v", offs, err)
	}
}

func TestWithMaxDocBytes(t *testing.T) {
	doc := []byte(`{"a": [1, 2, 3, 4, 5, 6, 7, 8]}`)
	q := MustCompile("$.a", WithMaxDocBytes(10))
	if _, err := runOffsets(q, doc); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("in-memory err %v, want *LimitError", err)
	}
	var le *LimitError
	err := q.RunReader(bytes.NewReader(doc), func(int) {})
	if !errors.As(err, &le) || le.What != "document bytes" || le.Max != 10 {
		t.Fatalf("streaming err %v, want document-bytes limit 10", err)
	}
	ok := MustCompile("$.a", WithMaxDocBytes(len(doc)))
	if offs, err := runOffsets(ok, doc); err != nil || len(offs) != 1 {
		t.Fatalf("at-limit run: offs %v err %v", offs, err)
	}
}

func TestQuerySetLimits(t *testing.T) {
	doc := []byte(`{"a": 1, "b": {"a": 2, "b": 3}}`)
	set := MustCompileSet([]string{"$..a", "$..b"}, WithMaxMatches(2))
	total := 0
	err := set.Run(doc, func(query, pos int) { total++ })
	if !errors.Is(err, ErrLimitExceeded) || total != 2 {
		t.Fatalf("total %d err %v, want 2 matches then *LimitError", total, err)
	}
	set = MustCompileSet([]string{"$..a"}, WithMaxDocBytes(8))
	if err := set.Run(doc, func(int, int) {}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("doc-bytes err %v, want *LimitError", err)
	}
	set = MustCompileSet([]string{"$..a"}, WithMaxDepth(1))
	if err := set.Run(doc, func(int, int) {}); !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("depth err %v, want *LimitError", err)
	}
}

// TestRunReaderContextCancellation cancels a run whose reader is blocked
// mid-document and requires the run to return promptly — within one window
// refill — with an error wrapping both ErrCanceled and context.Canceled.
func TestRunReaderContextCancellation(t *testing.T) {
	const window = 512
	doc := []byte(`{"pad": "` + strings.Repeat("x", 4*window) + `", "a": 1}`)

	unblock := make(chan struct{})
	defer close(unblock)
	r := faultreader.Blocking(doc, window, unblock)

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)

	q := MustCompile("$.a", WithStreamWindow(window))
	done := make(chan error, 1)
	go func() { done <- q.RunReaderContext(ctx, r, func(int) {}) }()

	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err %v, want wrap of ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v, want wrap of context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after cancellation (reader still blocked)")
	}
}

func TestQuerySetRunReaderContextCancellation(t *testing.T) {
	const window = 512
	doc := []byte(`{"pad": "` + strings.Repeat("y", 4*window) + `", "a": 1}`)

	unblock := make(chan struct{})
	defer close(unblock)
	r := faultreader.Blocking(doc, window, unblock)

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)

	set := MustCompileSet([]string{"$..a", "$..b"}, WithStreamWindow(window))
	done := make(chan error, 1)
	go func() { done <- set.RunReaderContext(ctx, r, func(int, int) {}) }()

	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v, want wrap of ErrCanceled and context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query-set run did not return after cancellation")
	}
}

func TestRunReaderContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := MustCompile("$.a").RunReaderContext(ctx, bytes.NewReader([]byte(`{"a": 1}`)), func(int) {})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err %v, want ErrCanceled", err)
	}
}

func TestRunReaderContextCompletes(t *testing.T) {
	// A run that finishes before cancellation behaves exactly like RunReader.
	doc := []byte(`{"a": 1, "b": {"a": 2}}`)
	var offs []int
	err := MustCompile("$..a").RunReaderContext(context.Background(),
		bytes.NewReader(doc), func(pos int) { offs = append(offs, pos) })
	if err != nil || len(offs) != 2 {
		t.Fatalf("offs %v err %v", offs, err)
	}
}

// TestPanicContainment: a panic escaping the engine (here provoked through
// the caller's own emit callback, the only seam reachable from a test) is
// contained at the API boundary as a typed *InternalError, never a crash.
func TestPanicContainment(t *testing.T) {
	err := MustCompile("$.a").Run([]byte(`{"a": 1}`), func(int) { panic("boom") })
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err %v, want *InternalError", err)
	}
	if ie.Engine != "rsonpath" || ie.Cause != "boom" {
		t.Fatalf("contained fault %+v", ie)
	}
}
