package rsonpath

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// Tests for the execution-plan layer (DESIGN.md §13): the differential
// suite pinning planner-auto results to every forced engine over the
// compliance corpus, the Explain stability contract, the cache-key
// regression, and the RunPlanned entry point.

// autoVariants compiles the same query under every planner-auto
// configuration whose dispatch can diverge: plain auto, auto with head-skip
// disabled (flips descendant chains to the stackless alternate), and
// planner off.
var autoVariants = []struct {
	name string
	opts []Option
}{
	{"auto", nil},
	{"auto-noheadskip", []Option{WithOptimizations(Optimizations{NoHeadSkip: true})}},
	{"planner-off", []Option{WithPlanner(PlannerOff)}},
}

// runCorpus is every compliance case, slices included.
func plannerCorpus() []complianceCase {
	return append(append([]complianceCase(nil), complianceCases...), sliceComplianceCases...)
}

// TestPlannerDifferentialRun: planner-auto answers (BytesInput) must be
// byte-identical to every forced engine on the whole compliance corpus.
func TestPlannerDifferentialRun(t *testing.T) {
	for _, c := range plannerCorpus() {
		t.Run(c.name, func(t *testing.T) {
			for _, v := range autoVariants {
				q, err := Compile(c.query, v.opts...)
				if err != nil {
					t.Fatalf("[%s] compile: %v", v.name, err)
				}
				vals, err := q.MatchValues([]byte(c.doc))
				if err != nil {
					t.Fatalf("[%s] run: %v", v.name, err)
				}
				got := make([]string, len(vals))
				for i, b := range vals {
					got[i] = string(b)
				}
				if fmt.Sprint(got) != fmt.Sprint(c.want) {
					t.Fatalf("[%s] %s on %s:\n  got  %q\n  want %q (plan %v)",
						v.name, c.query, c.doc, got, c.want, q.Explain(DocStats{}))
				}
			}
			for _, kind := range []EngineKind{EngineRsonpath, EngineSurfer, EngineDOM, EngineSki, EngineStackless} {
				q, err := Compile(c.query, WithEngine(kind))
				if err == ErrUnsupportedQuery {
					continue // restricted fragments (ski, stackless)
				}
				if err != nil {
					t.Fatalf("[%v] compile: %v", kind, err)
				}
				if kind == EngineSki && queryNeedsFullWildcard(c) {
					continue // ski's wildcard skips object fields by design
				}
				offs, err := q.MatchOffsets([]byte(c.doc))
				if err != nil {
					t.Fatalf("[%v] run: %v", kind, err)
				}
				auto := MustCompile(c.query)
				autoOffs, err := auto.MatchOffsets([]byte(c.doc))
				if err != nil {
					t.Fatalf("[auto] run: %v", err)
				}
				if fmt.Sprint(autoOffs) != fmt.Sprint(offs) {
					t.Fatalf("auto %v != forced %v offsets: %v vs %v (plan %v)",
						auto.Explain(DocStats{Bytes: len(c.doc)}), kind, autoOffs, offs,
						auto.Explain(DocStats{}))
				}
			}
		})
	}
}

// TestPlannerDifferentialRunReader repeats the differential over the
// streaming path (BufferedInput) with a small window, so every auto variant
// is exercised through RunReader's planned dispatch too.
func TestPlannerDifferentialRunReader(t *testing.T) {
	for _, c := range plannerCorpus() {
		t.Run(c.name, func(t *testing.T) {
			ref := MustCompile(c.query, WithEngine(EngineRsonpath), WithPlanner(PlannerOff))
			var want []int
			if err := ref.RunReader(strings.NewReader(c.doc), func(pos int) {
				want = append(want, pos)
			}); err != nil {
				t.Fatalf("[ref] run: %v", err)
			}
			for _, v := range autoVariants {
				q, err := Compile(c.query, append([]Option{WithStreamWindow(64)}, v.opts...)...)
				if err != nil {
					t.Fatalf("[%s] compile: %v", v.name, err)
				}
				var got []int
				if err := q.RunReader(strings.NewReader(c.doc), func(pos int) {
					got = append(got, pos)
				}); err != nil {
					t.Fatalf("[%s] stream run: %v", v.name, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("[%s] stream offsets %v, want %v (plan %v)",
						v.name, got, want, q.Explain(DocStats{Streaming: true}))
				}
			}
		})
	}
}

// TestExplainStable pins the Explain contract: deterministic output, the
// documented strategy/rule vocabulary, and the exact rendering the CLI's
// -explain flag prints.
func TestExplainStable(t *testing.T) {
	cases := []struct {
		query string
		opts  []Option
		stats DocStats
		want  string // Plan.String() — stable across runs and releases
	}{
		{"$..user.name", nil, DocStats{},
			"strategy=head-skip engine=rsonpath rule=head-skip: leading descendant label: skip straight to each occurrence of the sought label"},
		{"$.a.b[*]", nil, DocStats{},
			"strategy=skip engine=rsonpath rule=child-skipping: child/wildcard-only query: ski-style subtree and sibling fast-forwarding"},
		{"$.a..b.*", nil, DocStats{},
			"strategy=standard engine=rsonpath rule=depth-stack: general query: depth-stack simulation with the full skipping repertoire"},
		{"$..a..b", nil, DocStats{DenseMatches: true},
			"strategy=stackless engine=stackless rule=stackless-dense: sought labels are dense, so head-skip gains nothing; the allocation-free depth-register automaton is faster"},
		{"$..a..b", []Option{WithOptimizations(Optimizations{NoHeadSkip: true})}, DocStats{},
			"strategy=stackless engine=stackless rule=stackless-registers: head-skip disabled; the depth-register automaton beats the depth-stack simulation on descendant-only chains"},
		{"$..a", nil, DocStats{Indexed: true},
			"strategy=indexed engine=rsonpath rule=indexed-available: classification served from the prebuilt document mask index"},
		{"$.a.b", nil, DocStats{ExpectedRuns: 8},
			"strategy=indexed engine=rsonpath rule=index-amortizes: 8 expected runs over the same document repay the one-time index build (break-even ~8)"},
		{"$..a", nil, DocStats{ExpectedRuns: 100},
			"strategy=head-skip engine=rsonpath rule=head-skip: leading descendant label: skip straight to each occurrence of the sought label"},
		{"$..a", []Option{WithEngine(EngineSurfer)}, DocStats{},
			"strategy=surfer engine=surfer rule=forced-engine: engine forced by WithEngine"},
		{"$..a", []Option{WithPlanner(PlannerOff)}, DocStats{DenseMatches: true},
			"strategy=head-skip engine=rsonpath rule=planner-off: planner disabled; running the configured engine"},
	}
	for _, c := range cases {
		q := MustCompile(c.query, c.opts...)
		first := q.Explain(c.stats)
		if first.String() != c.want {
			t.Errorf("Explain(%s, %+v) =\n  %s\nwant\n  %s", c.query, c.stats, first, c.want)
		}
		for i := 0; i < 5; i++ {
			if again := q.Explain(c.stats); again != first {
				t.Fatalf("Explain unstable for %s: %+v then %+v", c.query, first, again)
			}
		}
	}
}

// TestExplainWatchdog: WithTimeout makes the plane-backed path unavailable
// and Explain says so.
func TestExplainWatchdog(t *testing.T) {
	q := MustCompile("$..a", WithTimeout(1e9))
	p := q.Explain(DocStats{Indexed: true})
	if p.Strategy != "head-skip" || p.Rule != "watchdog-streams" {
		t.Fatalf("watchdog plan = %+v", p)
	}
}

// TestStacklessAutoDispatch proves the alternate runner actually executes:
// a descendant-only chain compiled with head-skip disabled plans stackless
// and still matches the forced engines bytewise.
func TestStacklessAutoDispatch(t *testing.T) {
	doc := []byte(`{"a": {"x": {"b": 1}, "b": {"b": 2}}, "c": {"a": {"b": 3}}}`)
	auto := MustCompile("$..a..b", WithOptimizations(Optimizations{NoHeadSkip: true}))
	if p := auto.Explain(DocStats{Bytes: len(doc)}); p.Engine != EngineStackless {
		t.Fatalf("plan = %+v, want stackless", p)
	}
	got, err := auto.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EngineKind{EngineStackless, EngineRsonpath, EngineDOM} {
		want, err := MustCompile("$..a..b", WithEngine(kind)).MatchOffsets(doc)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("auto %v != %v %v", got, kind, want)
		}
	}
}

// TestRunPlanned: the returned plan matches Explain, the matches match Run,
// and ExpectedRuns past the break-even yields the indexed *advice* while
// the run still scans (no index is in hand).
func TestRunPlanned(t *testing.T) {
	doc := []byte(`{"a": 1, "n": {"a": 2}}`)
	q := MustCompile("$..a")
	var offs []int
	pl, err := q.RunPlanned(doc, DocStats{}, func(pos int) { offs = append(offs, pos) })
	if err != nil {
		t.Fatal(err)
	}
	if pl.Strategy != "head-skip" {
		t.Fatalf("plan = %+v", pl)
	}
	if fmt.Sprint(offs) != fmt.Sprint([]int{6, 20}) {
		t.Fatalf("offsets = %v", offs)
	}

	// A repeat workload on a child query earns the indexed *advice*, while
	// the run itself still scans (no index is in hand). Head-skip queries
	// like $..a never get the advice — memmem cannot be served from planes.
	qc := MustCompile("$.n.a")
	offs = nil
	pl, err = qc.RunPlanned(doc, DocStats{ExpectedRuns: 64}, func(pos int) { offs = append(offs, pos) })
	if err != nil {
		t.Fatal(err)
	}
	if pl.Strategy != "indexed" || pl.Rule != "index-amortizes" {
		t.Fatalf("plan = %+v, want indexed advice", pl)
	}
	if fmt.Sprint(offs) != fmt.Sprint([]int{20}) {
		t.Fatalf("advisory plan must still scan; offsets = %v", offs)
	}
	// Acting on the advice: build the index, serve from it, same answer.
	idx, err := Index(doc)
	if err != nil {
		t.Fatal(err)
	}
	var warm []int
	if err := qc.RunIndexed(idx, func(pos int) { warm = append(warm, pos) }); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(warm) != fmt.Sprint(offs) {
		t.Fatalf("indexed offsets %v != scan %v", warm, offs)
	}
}

// TestQueryCachePlannerKey is the collision regression: the same query text
// under different planner configurations must compile (and cache) as
// distinct artifacts — a cached plan must not leak across option sets.
func TestQueryCachePlannerKey(t *testing.T) {
	cache := NewQueryCache(16)
	auto, err := cache.Get("$..a")
	if err != nil {
		t.Fatal(err)
	}
	off, err := cache.Get("$..a", WithPlanner(PlannerOff))
	if err != nil {
		t.Fatal(err)
	}
	forced, err := cache.Get("$..a", WithEngine(EngineRsonpath))
	if err != nil {
		t.Fatal(err)
	}
	if auto == off || auto == forced || off == forced {
		t.Fatal("planner configurations collided in the cache")
	}
	if n := cache.Len(); n != 3 {
		t.Fatalf("cache holds %d entries, want 3", n)
	}
	// Same config twice is still one entry (the key is canonical).
	again, err := cache.Get("$..a", WithPlanner(PlannerOff))
	if err != nil {
		t.Fatal(err)
	}
	if again != off {
		t.Fatal("identical options missed the cache")
	}
	// The cached artifacts really do plan differently.
	if auto.Explain(DocStats{ExpectedRuns: 64}).Rule == off.Explain(DocStats{ExpectedRuns: 64}).Rule {
		t.Fatal("auto and planner-off artifacts plan identically")
	}
}

// TestQuerySetExplain: the set's plan layer reports the shared pass's
// flavor and upgrades to the planes like a single query.
func TestQuerySetExplain(t *testing.T) {
	set := MustCompileSet([]string{"$..a", "$..b"})
	if p := set.Explain(DocStats{}); p.Strategy != "head-skip" || p.Engine != EngineRsonpath {
		t.Fatalf("set plan = %+v", p)
	}
	if p := set.Explain(DocStats{Indexed: true}); p.Strategy != "indexed" {
		t.Fatalf("set plan with index = %+v", p)
	}
	mixed := MustCompileSet([]string{"$..a", "$.b[*]"})
	if p := mixed.Explain(DocStats{}); p.Strategy != "standard" {
		t.Fatalf("mixed set plan = %+v", p)
	}
}

// TestPipelineValuesSingleExtraction: MatchValues must agree with ValueAt
// over MatchOffsets — values are extracted during the final stage now, and
// the two views must stay identical, aliasing included.
func TestPipelineValuesSingleExtraction(t *testing.T) {
	doc := []byte(`{"a": [{"b": {"c": 1}}, {"b": [2, {"c": 3}]}], "b": {"c": 0}}`)
	p := NewPipeline(MustCompile("$.a..b"), MustCompile("$..c"))
	offs, err := p.MatchOffsets(doc)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := p.MatchValues(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(offs) || len(vals) == 0 {
		t.Fatalf("got %d values for %d offsets", len(vals), len(offs))
	}
	for i, o := range offs {
		want, err := ValueAt(doc, o)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vals[i], want) {
			t.Fatalf("value %d = %q, want %q", i, vals[i], want)
		}
		if &vals[i][0] != &doc[o] {
			t.Fatalf("value %d does not alias the document", i)
		}
	}
}
